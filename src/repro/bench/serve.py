"""Serving bench: replayed traffic through serial vs batched engines.

The harness answers two questions about :mod:`repro.serve`:

1. *Is continuous batching worth it?*  The same seeded Poisson trace is
   replayed through a ``max_batch=1`` engine (per-session serial serving)
   and a wide-batch engine; the headline is the wall-clock speedup, with
   p50/p99 chunk latency and batch occupancy alongside.
2. *Does batching change answers?*  Every chunk's features, scores and
   label from the two runs are compared **bitwise** — on the NumPy backend
   the comparison must be exact, and the bench hard-fails otherwise.

Since PR 9 the harness also answers a third question: *do deadlines get
met?*  The same trace is replayed **at its recorded rate** with a
per-chunk deadline budget through (a) the passive engine ticked by the
replay loop with no slack margin — which fires partial batches exactly
*at* their deadline, so deadline-triggered chunks finish one sweep late —
and (b) the :class:`~repro.serve.async_engine.AsyncServeEngine`, whose
background loop wakes a slack margin *early*.  The headline is the
violation count: the async engine meets deadlines the synchronous
fire-at-deadline policy structurally misses, on identical traffic, with
bit-identical outputs.

The benchmarked path exercises the full deployment loop: train a small
pipeline, ``save_model`` / ``load_model`` round-trip, deploy the *loaded*
snapshot, replay.  ``tools/bench_history.py --suite serve`` persists the
numbers to the committed trajectory.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
from typing import List, Optional

import numpy as np

from repro.core.pipeline import DFRFeatureExtractor
from repro.faults import FaultPlan, FaultSpec
from repro.readout.ridge import fit_ridge
from repro.serve.async_engine import AsyncServeEngine
from repro.serve.engine import ServeEngine
from repro.serve.model_store import ServableModel, load_model, save_model
from repro.serve.replay import (
    ReplayReport,
    poisson_trace,
    replay,
    replay_async,
)

__all__ = ["run_serve_bench", "format_serve"]

#: (A, B) pairs handed out round-robin when serving several models
_MODEL_PARAMS = [(0.4, 0.5), (0.7, 0.2), (0.3, 0.6), (0.55, 0.35)]


def _train_models(n_models: int, n_nodes: int, chunk_len: int,
                  n_channels: int, seed: int) -> List[ServableModel]:
    """Fit one shared feature pipeline and ridge readouts for each model."""
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((48, chunk_len * 2, n_channels))
    y = rng.integers(0, 3, 48)
    ext = DFRFeatureExtractor(n_nodes=n_nodes, seed=seed).fit(u)
    cfg = ext.snapshot()
    models = []
    for i in range(n_models):
        a_par, b_par = _MODEL_PARAMS[i % len(_MODEL_PARAMS)]
        feats, diverged = ext.features(u, a_par, b_par)
        ridge = fit_ridge(feats[~diverged], y[~diverged], 1e-2)
        models.append(ServableModel(
            name=f"m{i}", A=a_par, B=b_par, config=cfg, readout=ridge,
        ))
    return models


def _roundtrip(models: List[ServableModel]) -> List[ServableModel]:
    """Persist and reload every model (the deployed artifact path)."""
    out = []
    with tempfile.TemporaryDirectory() as tmp:
        for model in models:
            path = save_model(model, os.path.join(tmp, f"{model.name}.json"))
            out.append(load_model(path))
    return out


def _mismatches(a: List, b: List) -> int:
    """Count chunk results that are not bit-identical between two runs."""
    index = {(r.session_id, r.seq): r for r in a}
    if len(index) != len(a) or set(index) != {(r.session_id, r.seq)
                                             for r in b}:
        return max(len(a), len(b))
    bad = 0
    for r in b:
        ref = index[(r.session_id, r.seq)]
        same = (
            np.array_equal(ref.features, r.features)
            and (ref.scores is None) == (r.scores is None)
            and (ref.scores is None or np.array_equal(ref.scores, r.scores))
            and ref.label == r.label
            and ref.diverged == r.diverged
            and ref.n_steps == r.n_steps
        )
        bad += not same
    return bad


def run_serve_bench(
    *,
    streams: int = 64,
    chunks_per_session: int = 4,
    chunk_len: int = 32,
    n_channels: int = 1,
    n_nodes: int = 30,
    n_models: int = 1,
    max_batch: Optional[int] = None,
    max_wait_ms: Optional[float] = None,
    deadline_ms: float = 10.0,
    slack_margin_ms: float = 5.0,
    deadline_rate_hz: float = 4.0,
    repeats: int = 3,
    seed: int = 0,
    backend: Optional[str] = None,
    dtype: Optional[str] = None,
) -> dict:
    """Replay one trace through serial and batched engines; compare both.

    Returns a JSON-ready dict: the two :class:`ReplayReport` summaries,
    the speedup, and ``bitwise_mismatches`` (must be 0 on NumPy).  Each
    configuration runs ``repeats`` times and keeps its fastest wall-clock
    (per-run outputs are verified every time).

    Two further legs replay the trace slowed to ``deadline_rate_hz``
    chunks/s per stream (a rate the engine can serve — the recorded 200 Hz
    trace is a stress test, not an SLO scenario) with ``deadline_ms`` as
    every chunk's budget: a caller-driven synchronous engine that ticks
    only on submits (``sync_deadline`` — no background thread, so fire
    points falling between arrivals are served late) and the
    background-loop :class:`AsyncServeEngine` waking at each fire point
    ``slack_margin_ms`` early (``async_deadline``).  Their outputs join
    the bitwise comparison; their violation counts are the deadline
    headline.

    A final *chaos* leg replays the trace twice on the deterministic
    virtual clock — once clean, once under a seeded
    :class:`~repro.faults.FaultPlan` that raises in a fused sweep and
    delays ticks.  The faulted run must recover through the engine's
    sweep retry (visible in its ``stats()``) and still produce results
    **bit-identical** to the clean run; its mismatches join the same
    hard-fail counter.
    """
    if max_batch is None:
        max_batch = max(int(streams), 1)
    models = _roundtrip(_train_models(
        n_models, n_nodes, chunk_len, n_channels, seed))
    trace = poisson_trace(
        [m.name for m in models],
        n_sessions=streams, chunks_per_session=chunks_per_session,
        chunk_len=chunk_len, n_channels=n_channels, seed=seed + 1,
    )

    def run_once(mb: int) -> ReplayReport:
        engine = ServeEngine(max_batch=mb, max_wait_ms=max_wait_ms,
                             backend=backend, dtype=dtype)
        for model in models:
            engine.deploy(model)
        return replay(engine, trace)

    # the trace records arrivals at poisson_trace's default rate; the
    # deadline legs stretch the time axis to deadline_rate_hz per stream
    # (exponential gaps scale linearly, payload bits are untouched)
    dl_scale = trace.rate_hz / float(deadline_rate_hz)

    def run_sync_deadline() -> ReplayReport:
        engine = ServeEngine(max_batch=max_batch, deadline_ms=deadline_ms,
                             backend=backend, dtype=dtype)
        for model in models:
            engine.deploy(model)
        return replay(engine, trace, time_scale=dl_scale,
                      tick_on="submit")

    def run_async_deadline() -> ReplayReport:
        async def go() -> ReplayReport:
            async with AsyncServeEngine(
                max_batch=max_batch, deadline_ms=deadline_ms,
                slack_margin_ms=slack_margin_ms,
                backend=backend, dtype=dtype,
            ) as engine:
                for model in models:
                    engine.deploy(model)
                return await replay_async(engine, trace,
                                          time_scale=dl_scale)
        return asyncio.run(go())

    serial = batched = None
    mismatches = 0
    reference = None
    for _ in range(max(int(repeats), 1)):
        rep_s = run_once(1)
        rep_b = run_once(max_batch)
        if reference is None:
            reference = rep_s.results
        mismatches += _mismatches(reference, rep_s.results)
        mismatches += _mismatches(reference, rep_b.results)
        if serial is None or rep_s.wall_s < serial.wall_s:
            serial = rep_s
        if batched is None or rep_b.wall_s < batched.wall_s:
            batched = rep_b
    sync_dl = run_sync_deadline()
    async_dl = run_async_deadline()
    mismatches += _mismatches(reference, sync_dl.results)
    mismatches += _mismatches(reference, async_dl.results)

    def run_chaos(plan):
        engine = ServeEngine(max_batch=max_batch, deadline_ms=deadline_ms,
                             backend=backend, dtype=dtype)
        for model in models:
            engine.deploy(model)
        report = replay(engine, trace, time_scale=dl_scale,
                        clock="virtual", fault_plan=plan)
        return report, engine.stats()

    chaos_clean, _ = run_chaos(None)
    chaos_plan = FaultPlan(faults=[
        FaultSpec(kind="raise_sweep", at=1, times=1),
        FaultSpec(kind="delay_tick", at=2, times=2, delay_ms=deadline_ms),
    ], seed=seed)
    chaos_faulted, chaos_stats = run_chaos(chaos_plan)
    chaos_mismatches = _mismatches(chaos_clean.results,
                                   chaos_faulted.results)
    mismatches += chaos_mismatches
    speedup = serial.wall_s / batched.wall_s if batched.wall_s > 0 else 0.0
    return {
        "streams": streams,
        "chunks_per_session": chunks_per_session,
        "chunk_len": chunk_len,
        "n_channels": n_channels,
        "n_nodes": n_nodes,
        "n_models": n_models,
        "max_batch": max_batch,
        "max_wait_ms": max_wait_ms,
        "deadline_ms": deadline_ms,
        "slack_margin_ms": slack_margin_ms,
        "deadline_rate_hz": float(deadline_rate_hz),
        "repeats": repeats,
        "seed": seed,
        "backend": backend or "numpy",
        "dtype": dtype or "float64",
        "serial": serial.to_dict(),
        "batched": batched.to_dict(),
        "sync_deadline": sync_dl.to_dict(),
        "async_deadline": async_dl.to_dict(),
        "chaos": {
            "plan": chaos_plan.to_dict(),
            "sweep_retries": chaos_stats["sweep_retries"],
            "serial_fallbacks": chaos_stats["serial_fallbacks"],
            "failed_chunks": chaos_stats["failed_chunks"],
            "shed": chaos_stats["shed"],
            "mismatches": chaos_mismatches,
        },
        "speedup": speedup,
        "bitwise_mismatches": mismatches,
    }


def format_serve(result: dict) -> str:
    """Render the bench result as the console table."""
    lines = [
        f"serving bench: {result['streams']} streams x "
        f"{result['chunks_per_session']} chunks "
        f"(T={result['chunk_len']}, C={result['n_channels']}, "
        f"N_x={result['n_nodes']}), {result['n_models']} model(s), "
        f"{result['backend']}/{result['dtype']}",
        f"  {'engine':<22} {'wall_s':>8} {'sess/s':>9} {'chunks/s':>9} "
        f"{'p50_ms':>8} {'p99_ms':>8} {'occupancy':>9}",
    ]
    for label, rep in (
        ("serial (max_batch=1)", result["serial"]),
        (f"batched (max_batch={result['max_batch']})", result["batched"]),
    ):
        lines.append(
            f"  {label:<22} {rep['wall_s']:>8.4f} "
            f"{rep['sessions_per_sec']:>9.1f} {rep['chunks_per_sec']:>9.1f} "
            f"{rep['p50_ms']:>8.3f} {rep['p99_ms']:>8.3f} "
            f"{rep['mean_occupancy']:>9.3f}"
        )
    lines.append(
        f"  deadline legs (budget {result['deadline_ms']:.1f} ms, "
        f"{result.get('deadline_rate_hz', 4.0):g} Hz/stream):"
    )
    lines.append(
        f"  {'engine':<22} {'p50_ms':>8} {'p99_ms':>8} {'met':>6} "
        f"{'missed':>7} {'min_slack_ms':>13}"
    )
    for label, rep in (
        ("sync (tick on submit)", result["sync_deadline"]),
        ("async (background)", result["async_deadline"]),
    ):
        slack = rep.get("min_slack_ms")
        met = rep["deadline_chunks"] - rep["violations"]
        lines.append(
            f"  {label:<22} {rep['p50_ms']:>8.3f} {rep['p99_ms']:>8.3f} "
            f"{met:>6d} {rep['violations']:>7d} "
            f"{'-' if slack is None else format(slack, '>13.3f')}"
        )
    chaos = result.get("chaos")
    if chaos is not None:
        lines.append(
            f"  chaos replay (injected sweep fault + tick delays): "
            f"{chaos['sweep_retries']} retried sweep(s), "
            f"{chaos['serial_fallbacks']} serial fallback(s), "
            f"{chaos['failed_chunks']} failed, {chaos['shed']} shed, "
            f"{chaos['mismatches']} mismatch(es) vs clean"
        )
    verdict = ("bitwise OK" if result["bitwise_mismatches"] == 0
               else f"{result['bitwise_mismatches']} MISMATCHES")
    lines.append(
        f"  speedup: {result['speedup']:.2f}x   all engines == serial: "
        f"{verdict}"
    )
    return "\n".join(lines)
