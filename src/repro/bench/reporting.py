"""Plain-text reporting helpers for the benchmark harnesses."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["format_table", "ascii_heatmap", "format_paper_comparison"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table.

    Floats are shown with 3 decimals, everything else via ``str``.
    """
    def fmt(cell):
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_heatmap(
    matrix: np.ndarray,
    *,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    title: Optional[str] = None,
    mark: Optional[tuple] = None,
) -> str:
    """Render a small matrix as a numeric heat map with shading.

    Each cell shows the value (3 decimals) plus a density glyph; ``mark``
    highlights one ``(row, col)`` cell with ``*`` (e.g. the selected grid
    point).  NaNs (diverged points) render as ``----``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    finite = matrix[np.isfinite(matrix)]
    lo = finite.min() if finite.size else 0.0
    hi = finite.max() if finite.size else 1.0
    span = hi - lo if hi > lo else 1.0
    glyphs = " .:-=+*#%@"

    def cell(i, j):
        v = matrix[i, j]
        if not np.isfinite(v):
            return "  ----  "
        g = glyphs[min(int((v - lo) / span * (len(glyphs) - 1)), len(glyphs) - 1)]
        star = "*" if mark == (i, j) else g
        return f"{v:.3f}{star}  "

    label_w = max(len(str(r)) for r in row_labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * (label_w + 2) + " ".join(f"{c:>8}" for c in col_labels)
    lines.append(header)
    for i, rl in enumerate(row_labels):
        lines.append(
            f"{str(rl):>{label_w}} | " + " ".join(cell(i, j) for j in range(matrix.shape[1]))
        )
    return "\n".join(lines)


def format_paper_comparison(
    headers: Sequence[str],
    measured_rows: Sequence[Sequence],
    paper_rows: Sequence[Sequence],
    *,
    title: Optional[str] = None,
) -> str:
    """Interleave measured and paper reference values column-wise.

    ``measured_rows[i]`` and ``paper_rows[i]`` must describe the same
    experiment; each data column is rendered as ``measured (paper)``.
    """
    merged = []
    for measured, paper in zip(measured_rows, paper_rows):
        row = [measured[0]]
        for m, p in zip(measured[1:], paper[1:]):
            m_s = f"{m:.3f}" if isinstance(m, float) else str(m)
            p_s = f"{p:.3f}" if isinstance(p, float) else str(p)
            row.append(f"{m_s} ({p_s})")
        merged.append(row)
    return format_table(headers, merged, title=title)
