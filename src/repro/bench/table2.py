"""Table 2 harness: storage reduction by truncated backpropagation.

This table reproduces **exactly**: the counts are closed-form functions of
``(T, N_x, N_y)`` (see :mod:`repro.memory.accounting`), and the dataset
metadata was derived by inverting the paper's own numbers, so the harness
doubles as a self-check — any mismatch is reported loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bench.reporting import format_table
from repro.data.metadata import DATASETS, N_X_PAPER, PAPER_TABLE2, dataset_keys
from repro.memory.accounting import dataset_storage_row

__all__ = ["Table2Row", "run_table2", "format_table2"]


@dataclass
class Table2Row:
    """One row of Table 2: measured counts vs the paper's."""

    dataset: str
    naive: int
    simplified: int
    reduction_percent: int
    paper_naive: int
    paper_simplified: int
    paper_reduction_percent: int

    @property
    def matches_paper(self) -> bool:
        return (
            self.naive == self.paper_naive
            and self.simplified == self.paper_simplified
            and self.reduction_percent == self.paper_reduction_percent
        )


def run_table2(
    keys: Optional[Sequence[str]] = None, *, n_nodes: int = N_X_PAPER,
    window: int = 1,
) -> List[Table2Row]:
    """Compute the storage table for all (or selected) datasets."""
    keys = list(keys) if keys is not None else list(dataset_keys())
    rows = []
    for key in keys:
        spec = DATASETS[key]
        measured = dataset_storage_row(spec, n_nodes=n_nodes, window=window)
        paper = PAPER_TABLE2[key]
        rows.append(
            Table2Row(
                dataset=key,
                naive=measured["naive"],
                simplified=measured["simplified"],
                reduction_percent=measured["reduction_percent"],
                paper_naive=paper[0],
                paper_simplified=paper[1],
                paper_reduction_percent=paper[2],
            )
        )
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render the measured table with per-row paper agreement."""
    table_rows = [
        [
            r.dataset,
            r.naive,
            r.simplified,
            f"{r.reduction_percent} %",
            f"{r.paper_naive}/{r.paper_simplified}/{r.paper_reduction_percent} %",
            "OK" if r.matches_paper else "MISMATCH",
        ]
        for r in rows
    ]
    n_match = sum(r.matches_paper for r in rows)
    return format_table(
        ["dataset", "naive (a)", "simplified (b)", "(a-b)/a", "paper", "match"],
        table_rows,
        title=(
            f"Table 2 — storage reduction by truncated backpropagation "
            f"({n_match}/{len(rows)} rows match the paper exactly)"
        ),
    )
