"""Storage accounting for truncated backpropagation (paper Sec. 3.4, Table 2).

The paper counts the number of stored values a DFR trainer must retain:

* **reservoir states** — full backpropagation needs every state the DPRR
  touched, ``(T + 1) * N_x`` values (the ``+1`` is the lag-1 partner of the
  first step); truncation to a window of ``W`` final steps needs only
  ``(W + 1) * N_x`` (the paper's "two reservoir states" for ``W = 1``);
* **the reservoir representation** — ``N_x (N_x + 1)`` DPRR accumulators;
* **the readout** — ``N_y`` rows of ``N_x (N_x + 1)`` weights plus a bias,
  i.e. ``N_y (N_x (N_x + 1) + 1)`` values.

These formulas reproduce the paper's Table 2 **exactly** for all 12
datasets (pinned in ``tests/test_memory.py``); they are also how the
``(T, N_y)`` metadata in :mod:`repro.data.metadata` was derived from the
paper in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.metadata import N_X_PAPER, DatasetSpec

__all__ = [
    "StorageBreakdown",
    "naive_storage",
    "truncated_storage",
    "reduction_percent",
    "dataset_storage_row",
]


@dataclass(frozen=True)
class StorageBreakdown:
    """Stored-value counts for one training configuration."""

    reservoir_states: int
    representation: int
    readout: int

    @property
    def total(self) -> int:
        """Total stored values (the paper's Table 2 columns)."""
        return self.reservoir_states + self.representation + self.readout


def _common_terms(n_nodes: int, n_classes: int) -> tuple:
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if n_classes < 1:
        raise ValueError(f"n_classes must be >= 1, got {n_classes}")
    representation = n_nodes * (n_nodes + 1)
    readout = n_classes * (representation + 1)
    return representation, readout


def naive_storage(n_steps: int, n_nodes: int, n_classes: int) -> StorageBreakdown:
    """Storage with full backpropagation: all ``(T+1)`` states retained."""
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    representation, readout = _common_terms(n_nodes, n_classes)
    return StorageBreakdown(
        reservoir_states=(n_steps + 1) * n_nodes,
        representation=representation,
        readout=readout,
    )


def truncated_storage(
    n_nodes: int, n_classes: int, *, window: int = 1
) -> StorageBreakdown:
    """Storage with backpropagation truncated to ``window`` final steps.

    ``window = 1`` is the paper's "simplified" column: only ``x(T-1)`` and
    ``x(T)`` are retained.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    representation, readout = _common_terms(n_nodes, n_classes)
    return StorageBreakdown(
        reservoir_states=(window + 1) * n_nodes,
        representation=representation,
        readout=readout,
    )


def reduction_percent(naive_total: int, reduced_total: int) -> int:
    """Relative saving ``(a - b) / a`` as a rounded percentage (Table 2)."""
    if naive_total <= 0:
        raise ValueError("naive_total must be positive")
    return int(round(100.0 * (naive_total - reduced_total) / naive_total))


def dataset_storage_row(
    spec: DatasetSpec, *, n_nodes: int = N_X_PAPER, window: int = 1
) -> dict:
    """One Table 2 row for a dataset spec: naive, simplified, reduction %."""
    naive = naive_storage(spec.length, n_nodes, spec.n_classes)
    reduced = truncated_storage(n_nodes, spec.n_classes, window=window)
    return {
        "dataset": spec.key,
        "naive": naive.total,
        "simplified": reduced.total,
        "reduction_percent": reduction_percent(naive.total, reduced.total),
    }
