"""Storage accounting for truncated backpropagation (paper Table 2)."""

from repro.memory.accounting import (
    StorageBreakdown,
    dataset_storage_row,
    naive_storage,
    reduction_percent,
    truncated_storage,
)

__all__ = [
    "StorageBreakdown",
    "dataset_storage_row",
    "naive_storage",
    "reduction_percent",
    "truncated_storage",
]
