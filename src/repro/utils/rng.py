"""Random-number-generator plumbing.

All stochastic components of the library (mask generation, SGD shuffling,
synthetic data generation, train/validation splits) accept either an integer
seed, an existing :class:`numpy.random.Generator`, or ``None``.  Routing every
call through :func:`ensure_rng` keeps experiments reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rng(rng: np.random.Generator, n: int) -> list:
    """Split ``rng`` into ``n`` independent child generators.

    Children are derived through ``spawn`` when available (numpy >= 1.25) and
    through fresh integer seeds drawn from ``rng`` otherwise, so the parent
    stream is perturbed identically across numpy versions used in CI.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
