"""Small shared utilities: RNG handling and argument validation."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.validation import (
    as_batch,
    check_positive,
    check_probability,
    ensure_1d_labels,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "as_batch",
    "check_positive",
    "check_probability",
    "ensure_1d_labels",
]
