"""Input validation helpers shared across the library.

The conventions enforced here are global to the package:

* a *sample* is a 2-D array of shape ``(T, C)`` — ``T`` time steps of a
  ``C``-channel multivariate series;
* a *batch* is a 3-D array of shape ``(N, T, C)``;
* labels are 1-D integer arrays of shape ``(N,)``.
"""

from __future__ import annotations

import numpy as np


def as_batch(u: np.ndarray, *, name: str = "u") -> np.ndarray:
    """Coerce ``u`` to a float64 batch of shape ``(N, T, C)``.

    A single 2-D sample ``(T, C)`` is promoted to a batch of one.  A 1-D
    univariate series ``(T,)`` is promoted to ``(1, T, 1)``.
    """
    arr = np.asarray(u, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :, np.newaxis]
    elif arr.ndim == 2:
        arr = arr[np.newaxis, :, :]
    elif arr.ndim != 3:
        raise ValueError(
            f"{name} must have 1, 2 or 3 dimensions (got shape {arr.shape})"
        )
    if arr.shape[1] < 1:
        raise ValueError(f"{name} must contain at least one time step")
    if arr.shape[2] < 1:
        raise ValueError(f"{name} must contain at least one channel")
    return arr


def check_positive(value: float, *, name: str) -> float:
    """Validate that ``value`` is a finite, strictly positive scalar."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_probability(value: float, *, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def ensure_1d_labels(y: np.ndarray, *, n_samples: int = None) -> np.ndarray:
    """Coerce ``y`` to a 1-D int64 label array, optionally checking length."""
    labels = np.asarray(y)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and not np.issubdtype(labels.dtype, np.integer):
        rounded = np.rint(labels)
        if not np.allclose(labels, rounded):
            raise ValueError("labels must be integers")
        labels = rounded
    labels = labels.astype(np.int64)
    if n_samples is not None and labels.shape[0] != n_samples:
        raise ValueError(
            f"expected {n_samples} labels, got {labels.shape[0]}"
        )
    if labels.size and labels.min() < 0:
        raise ValueError("labels must be non-negative class indices")
    return labels
