"""Hardware-oriented utilities: fixed-point simulation and circuit costs."""

from repro.hardware.cost_model import (
    CircuitCost,
    dfr_inference_cost,
    dfr_training_memory_bits,
)
from repro.hardware.fixed_point import QFormat, QuantizedModularDFR
from repro.hardware.verilog_gen import VerilogDFR, generate as generate_verilog

__all__ = [
    "CircuitCost",
    "dfr_inference_cost",
    "dfr_training_memory_bits",
    "QFormat",
    "QuantizedModularDFR",
    "VerilogDFR",
    "generate_verilog",
]
