"""Fixed-point arithmetic simulation for embedded DFR deployments.

The paper's motivation is embedded, low-power hardware (Sec. 1); digital DFR
implementations use fixed-point datapaths.  This module provides a signed
Q-format (:class:`QFormat`) and a :class:`QuantizedModularDFR` that re-runs
the modular-DFR recurrence with every stored value quantized — states,
masked drives, and parameters — exactly as an ``int``-datapath circuit
would hold them.

The bit-width ablation bench (``repro-bench ablation-bitwidth``) uses this
to show how many fractional bits the trained reservoir needs before
classification accuracy degrades.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.reservoir.masking import InputMask
from repro.reservoir.nonlinearity import Identity, get_nonlinearity
from repro.utils.validation import as_batch

__all__ = ["QFormat", "QuantizedModularDFR"]


@dataclass(frozen=True)
class QFormat:
    """Signed fixed-point format with ``int_bits`` integer and
    ``frac_bits`` fractional bits (plus an implicit sign bit).

    Values are represented on the grid ``k * 2^-frac_bits`` and saturate at
    the format limits (saturating arithmetic, the standard DSP choice —
    wrap-around would destroy a reservoir's dynamics on first overflow).
    """

    int_bits: int
    frac_bits: int

    def __post_init__(self):
        if self.int_bits < 0 or self.frac_bits < 0:
            raise ValueError("bit counts must be non-negative")
        if self.int_bits + self.frac_bits == 0:
            raise ValueError("format must have at least one magnitude bit")

    @property
    def total_bits(self) -> int:
        """Word width including the sign bit."""
        return self.int_bits + self.frac_bits + 1

    @property
    def resolution(self) -> float:
        """The quantization step ``2^-frac_bits``."""
        return 2.0**-self.frac_bits

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return 2.0**self.int_bits - self.resolution

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2.0**self.int_bits)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round to the representation grid with saturation."""
        x = np.asarray(x, dtype=np.float64)
        scaled = np.rint(x / self.resolution) * self.resolution
        return np.clip(scaled, self.min_value, self.max_value)

    def quantization_error(self, x: np.ndarray) -> float:
        """Max absolute error introduced by quantizing ``x``."""
        x = np.asarray(x, dtype=np.float64)
        return float(np.max(np.abs(self.quantize(x) - x))) if x.size else 0.0

    def __str__(self) -> str:
        return f"Q{self.int_bits}.{self.frac_bits}"


class QuantizedModularDFR:
    """Modular DFR evaluated on a fixed-point datapath.

    Every value a hardware implementation stores or computes is pushed onto
    the Q-format grid: the mask-multiplied drive, the nonlinearity output,
    the two multiplier products, and each node state.  The node loop is
    explicit (no IIR-filter shortcut) because quantization must happen
    *inside* the chain, exactly where the circuit would register the value.

    Parameters
    ----------
    mask:
        Input mask (quantized on construction).
    qformat:
        The datapath :class:`QFormat`.
    nonlinearity:
        Shape function; evaluated in float and re-quantized (a lookup-table
        implementation, the standard hardware realization).
    """

    def __init__(self, mask, qformat: QFormat, nonlinearity=None):
        if not isinstance(mask, InputMask):
            mask = InputMask(mask)
        self.qformat = qformat
        self.mask = InputMask(qformat.quantize(mask.matrix))
        self.nonlinearity = (
            Identity() if nonlinearity is None else get_nonlinearity(nonlinearity)
        )

    @property
    def n_nodes(self) -> int:
        return self.mask.n_nodes

    def run(self, u: np.ndarray, A: float, B: float) -> np.ndarray:
        """Quantized forward pass; returns states ``(N, T+1, N_x)``.

        ``A`` and ``B`` are quantized to the datapath format as circuit
        coefficients before the run.
        """
        u = as_batch(u)
        q = self.qformat.quantize
        a_q = float(q(A))
        b_q = float(q(B))
        j_seq = q(self.mask.apply(q(u)))
        n, t_len, nx = j_seq.shape
        phi = self.nonlinearity.phi
        states = np.zeros((n, t_len + 1, nx))
        for k in range(t_len):
            x_prev_step = states[:, k, :]
            x_left = x_prev_step[:, -1]
            for node in range(nx):
                s = q(j_seq[:, k, node] + x_prev_step[:, node])
                f_out = q(a_q * q(phi(s)))
                x_new = q(f_out + q(b_q * x_left))
                states[:, k + 1, node] = x_new
                x_left = x_new
        return states

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"QuantizedModularDFR(n_nodes={self.n_nodes}, "
            f"qformat={self.qformat}, nonlinearity={self.nonlinearity!r})"
        )
