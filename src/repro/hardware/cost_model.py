"""First-order circuit cost model for a digital DFR classifier.

Estimates the arithmetic resources and on-chip storage of a modular-DFR
classification pipeline, in the style of the circuit-size comparisons of
the DPRR paper (Ikeda et al., TCAD 2022).  The model counts:

* **multipliers/adders** instantiated by the reservoir datapath (the
  modular DFR needs exactly two multipliers — by ``A`` and by ``B`` — plus
  the nonlinearity block, which is a LUT for non-identity shapes);
* **MAC operations per inference** for reservoir, DPRR accumulation, and
  readout;
* **memory words**, which for the training configuration tie directly to
  :mod:`repro.memory.accounting` (the paper's Table 2).

The numbers are first-order (no pipelining/bit-width weighting beyond the
word size) but give the right relative picture for the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.accounting import naive_storage, truncated_storage

__all__ = ["CircuitCost", "dfr_inference_cost", "dfr_training_memory_bits"]


@dataclass(frozen=True)
class CircuitCost:
    """Resource estimate for one configuration."""

    multipliers: int
    adders: int
    lut_blocks: int
    memory_words: int
    macs_per_step: int
    macs_per_inference: int

    def memory_bits(self, word_bits: int) -> int:
        """Total storage in bits for a given word width."""
        if word_bits < 1:
            raise ValueError(f"word_bits must be >= 1, got {word_bits}")
        return self.memory_words * word_bits


def dfr_inference_cost(
    n_nodes: int,
    n_classes: int,
    n_steps: int,
    *,
    n_channels: int = 1,
    identity_shape: bool = True,
) -> CircuitCost:
    """Cost of one classification inference (reservoir + DPRR + readout).

    Parameters
    ----------
    n_nodes, n_classes, n_steps:
        Reservoir size ``N_x``, class count ``N_y``, series length ``T``.
    n_channels:
        Input channels (masking is a ``N_x x C`` multiply per step; for
        binary masks it reduces to add/subtract but we count it as MACs).
    identity_shape:
        With the identity shape the ``f`` block is just the ``A``
        multiplier; other shapes add one LUT block.
    """
    if min(n_nodes, n_classes, n_steps, n_channels) < 1:
        raise ValueError("all dimensions must be >= 1")
    n_r = n_nodes * (n_nodes + 1)
    # datapath: one A-multiplier, one B-multiplier, one adder for the sum
    # j + x, one adder for the node update; DPRR bank shares one MAC lane
    multipliers = 2
    adders = 2
    lut_blocks = 0 if identity_shape else 1
    # per virtual-node step: mask MAC (C), f() + A mult, B mult + add;
    # DPRR: each step k updates N_x(N_x+1) accumulators (one MAC each)
    macs_per_node = n_channels + 2
    macs_per_step = n_nodes * macs_per_node + n_r
    readout_macs = n_classes * (n_r + 1)
    macs_per_inference = n_steps * macs_per_step + readout_macs
    # inference storage: delay line (N_x), DPRR accumulators, readout
    memory_words = n_nodes + n_r + n_classes * (n_r + 1)
    return CircuitCost(
        multipliers=multipliers,
        adders=adders,
        lut_blocks=lut_blocks,
        memory_words=memory_words,
        macs_per_step=macs_per_step,
        macs_per_inference=macs_per_inference,
    )


def dfr_training_memory_bits(
    n_nodes: int,
    n_classes: int,
    n_steps: int,
    *,
    word_bits: int = 16,
    window: int = None,
) -> int:
    """On-chip training storage in bits (Table 2 counts x word width).

    ``window=None`` means full backpropagation (the "naive" column);
    an integer window gives the truncated variant.
    """
    if window is None:
        words = naive_storage(n_steps, n_nodes, n_classes).total
    else:
        words = truncated_storage(n_nodes, n_classes, window=window).total
    if word_bits < 1:
        raise ValueError(f"word_bits must be >= 1, got {word_bits}")
    return words * word_bits
