"""Continuous-batching scheduler over the fused candidate/batch axes.

The training stack earned its throughput by turning per-candidate,
per-sample Python loops into one fused array program (PR 4/5).  Serving
has the same shape of problem from the other direction: many independent
*streams* trickle chunks in at their own pace, and scoring each chunk
alone wastes the very batch axis the reservoir sweep vectorizes over.

:class:`ServeEngine` closes that gap with continuous batching:

* ``submit()`` appends a chunk to its session's FIFO queue and makes the
  session's head schedulable — nothing is computed on the submit path.
* ``tick()`` asks the :class:`~repro.serve.scheduler.DeadlineScheduler`
  which (pipeline fingerprint, chunk length) buckets are *due* — full, or
  holding a head chunk whose deadline (minus the slack margin) has
  arrived — and launches one fused ``run_streaming`` per due bucket.
  Sessions ride the **batch axis**; when the packed sessions belong to
  *different* deployed models that share a feature pipeline (equal
  :meth:`~repro.serve.model_store.ServableModel.fingerprint`), the models'
  ``(A, B)`` pairs ride the **candidate axis** of the same sweep — one
  ``(K, N, T)`` program serves K heterogeneous models over N streams.
* Each session's resumable reservoir state lives **backend-native** in a
  :class:`~repro.serve.carry.CarryStore` between ticks: the batch is
  assembled device-side before the sweep and sliced back device-side
  after it, and arrays cross to the host only at declared boundaries
  (final features/scores, divergence flags, checkpoints) — so torch/CuPy
  serving pays zero per-tick device-to-host round-trips for resident
  sessions (assertable via ``backend.transfers``).

The tick itself is split into three phases: *prepare* (under the engine
lock: select due buckets, mark their sessions in-flight, assemble inputs
and carries), *sweep* (off-lock: the fused array program — so submits
from other threads, or an asyncio event loop, never wait on compute), and
*commit* (under the lock: advance sessions, store carries, score, resolve
results).  :class:`~repro.serve.async_engine.AsyncServeEngine` builds its
background tick loop on exactly this property.

Batching never changes answers on the NumPy backend: the streaming drive
is evaluated step-wise (chunk- and batch-invariant bits), and every other
op in the sweep — standardization, the per-step element-wise chain, the
``lfilter`` recursion, the DPRR accumulators — is per-sample independent.
A ``max_batch=64`` engine is therefore *bit-identical* to a
``max_batch=1`` engine replaying the same chunks (pinned by tests); the
knobs trade latency against throughput, never correctness.

Scheduling knobs (constructor arguments, falling back to environment
variables):

* ``max_batch`` / ``REPRO_SERVE_MAX_BATCH`` — most sessions per fused
  sweep (default 32).
* ``deadline_ms`` / ``REPRO_SERVE_DEADLINE_MS`` — default per-chunk
  deadline budget (default 0: due immediately).  Overridable per session
  (``open_session``) and per chunk (``submit``).  ``max_wait_ms`` /
  ``REPRO_SERVE_MAX_WAIT_MS`` is kept as a compatibility alias feeding
  the same default.
* ``slack_margin_ms`` — fire a due bucket this early (``"auto"`` = an
  EWMA of measured sweep durations, so results *land* before deadlines
  instead of starting at them; default 0 preserves the legacy
  fire-at-deadline behavior).
* ``idle_ttl_ms`` / ``REPRO_SERVE_IDLE_TTL_MS`` — checkpoint-and-evict
  sessions idle longer than this (default 0: never); a submit to an
  evicted session restores it transparently.
* ``max_pending`` / ``REPRO_SERVE_MAX_PENDING`` — bound on queued chunks
  per session (default 0: unbounded); a submit over the bound raises
  :class:`Backpressure` (the async engine turns that into an awaitable
  wait).  ``max_pending_total`` bounds the engine-wide queue the same way.
* ``sweep_retries`` — fused-sweep attempts per bucket before the engine
  falls back to serial per-session sweeps (default 1 retry); a session
  whose *serial* sweep still fails has its head chunk failed (an
  ``error`` :class:`ChunkResult`), never a hung future.
* ``shed_after_ms`` — optional overload shedding: a deadline chunk whose
  due time is already more than this grace past is dropped with an
  ``Overloaded`` result instead of cascading misses onto the queue behind
  it (default off).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import faults
from repro.backend import default_backend, resolve_backend
from repro.reservoir.modular import StreamingResult, _copy_array
from repro.serve.carry import CarryStore
from repro.serve.model_store import ServableModel
from repro.serve.scheduler import (
    DeadlineScheduler,
    resolve_deadline_ms,
    resolve_idle_ttl_ms,
)
from repro.serve.session import PendingChunk, StreamSession

__all__ = [
    "SERVE_MAX_BATCH_ENV",
    "SERVE_MAX_WAIT_ENV",
    "SERVE_MAX_PENDING_ENV",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_WAIT_MS",
    "SESSION_FORMAT",
    "SESSION_FORMAT_VERSION",
    "resolve_max_batch",
    "resolve_max_wait_ms",
    "resolve_max_pending",
    "Backpressure",
    "Overloaded",
    "ChunkResult",
    "TickReport",
    "ServeEngine",
]

#: environment variable bounding sessions per fused sweep
SERVE_MAX_BATCH_ENV = "REPRO_SERVE_MAX_BATCH"
#: environment variable bounding how long a partial batch may wait (ms);
#: the legacy alias of REPRO_SERVE_DEADLINE_MS
SERVE_MAX_WAIT_ENV = "REPRO_SERVE_MAX_WAIT_MS"
#: environment variable bounding queued chunks per session (0 = unbounded)
SERVE_MAX_PENDING_ENV = "REPRO_SERVE_MAX_PENDING"

DEFAULT_MAX_BATCH = 32
DEFAULT_MAX_WAIT_MS = 0.0


class Backpressure(RuntimeError):
    """A submit would exceed a pending-queue bound.

    The synchronous engine raises this immediately;
    :class:`~repro.serve.async_engine.AsyncServeEngine` catches it and
    awaits queue space instead, so async callers see an awaitable stall,
    never an exception.
    """


class Overloaded(RuntimeError):
    """A chunk was shed because its deadline was hopelessly past.

    Raised from the futures of shed chunks on the async engine; carried
    as the ``error`` of the shed chunk's :class:`ChunkResult` on the
    synchronous one.
    """

#: magic string identifying a serialized session checkpoint
SESSION_FORMAT = "repro-serve-session"
#: session-checkpoint schema version; bump on any field change
SESSION_FORMAT_VERSION = 1

_SESSION_KEYS = {"format", "format_version", "session_id", "model_name",
                 "fingerprint", "n_steps", "next_seq", "deadline_ms",
                 "window", "carry"}


def resolve_max_batch(value: Optional[int] = None) -> int:
    """``value`` if given, else ``REPRO_SERVE_MAX_BATCH``, else 32."""
    if value is None:
        raw = os.environ.get(SERVE_MAX_BATCH_ENV, "").strip()
        if not raw:
            return DEFAULT_MAX_BATCH
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{SERVE_MAX_BATCH_ENV} must be an integer, got {raw!r}"
            ) from None
    value = int(value)
    if value < 1:
        raise ValueError(f"max_batch must be >= 1, got {value}")
    return value


def resolve_max_wait_ms(value: Optional[float] = None) -> float:
    """``value`` if given, else ``REPRO_SERVE_MAX_WAIT_MS``, else 0."""
    if value is None:
        raw = os.environ.get(SERVE_MAX_WAIT_ENV, "").strip()
        if not raw:
            return DEFAULT_MAX_WAIT_MS
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"{SERVE_MAX_WAIT_ENV} must be a number, got {raw!r}"
            ) from None
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValueError(f"max_wait_ms must be finite and >= 0, got {value}")
    return value


def resolve_max_pending(value: Optional[int] = None) -> int:
    """``value`` if given, else ``REPRO_SERVE_MAX_PENDING``, else 0 (off)."""
    if value is None:
        raw = os.environ.get(SERVE_MAX_PENDING_ENV, "").strip()
        if not raw:
            return 0
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{SERVE_MAX_PENDING_ENV} must be an integer, got {raw!r}"
            ) from None
    value = int(value)
    if value < 0:
        raise ValueError(f"max_pending must be >= 0, got {value}")
    return value


@dataclass
class ChunkResult:
    """One scored chunk, handed back in completion order."""

    session_id: str
    model_name: str
    seq: int                      # per-session chunk index
    n_steps: int                  # cumulative stream length after this chunk
    features: np.ndarray          # (N_r,) DPRR features of the whole stream
    scores: Optional[np.ndarray]  # (N_y,) readout scores, None w/o readout
    label: Optional[int]          # argmax class, None without a readout
    diverged: bool
    arrival: float                # engine-clock submit time
    completed: float              # engine-clock completion time
    batch_sessions: int           # sessions in the fused sweep that scored it
    batch_models: int             # distinct models on that sweep's candidate axis
    deadline: Optional[float] = None  # absolute due time; None w/o a budget
    error: Optional[str] = None   # failure description; None for a scored chunk
    shed: bool = False            # True: dropped by overload shedding

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def latency_ms(self) -> float:
        return (self.completed - self.arrival) * 1e3

    @property
    def slack_ms(self) -> Optional[float]:
        """Milliseconds to spare against the deadline (negative = missed)."""
        if self.deadline is None:
            return None
        return (self.deadline - self.completed) * 1e3

    @property
    def violated(self) -> bool:
        slack = self.slack_ms
        return slack is not None and slack < 0.0


@dataclass
class TickReport:
    """What one scheduler tick did."""

    processed: int = 0            # chunks completed this tick
    sweeps: int = 0               # fused reservoir sweeps launched
    rows_computed: int = 0        # sum of K * N over the sweeps
    deferred: bool = False        # True: every waiting bucket was held back
    queue_depth: int = 0          # schedulable session heads after the tick
    occupancy: float = 0.0        # processed / (sweeps * max_batch)
    violations: int = 0           # deadline chunks completed past their due
    min_slack_ms: Optional[float] = None  # tightest slack seen this tick
    evicted: int = 0              # idle sessions checkpointed out
    sweep_retries: int = 0        # fused sweeps re-attempted after a failure
    serial_fallbacks: int = 0     # buckets that fell back to serial sweeps
    failed_chunks: int = 0        # head chunks failed after all recovery
    shed: int = 0                 # chunks dropped by overload shedding


class _Deployment:
    """A deployed model plus its rebuilt feature pipeline."""

    __slots__ = ("model", "extractor", "fingerprint", "n_channels",
                 "_readout_native")

    def __init__(self, model: ServableModel, backend_spec: Optional[str],
                 dtype: Optional[str]):
        self.model = model
        # rebuild under the *engine's* backend/dtype, not the snapshot's
        # preference — one engine, one numerics contract
        cfg = model.config
        self.extractor = cfg.build()
        self.extractor.dtype = dtype
        self.extractor.set_backend(backend_spec)
        self.fingerprint = model.fingerprint()
        self.n_channels = int(np.asarray(cfg.mask_matrix).shape[1])
        self._readout_native = None

    def readout_native(self, xb) -> tuple:
        """The ridge readout's arrays on the engine backend, cached.

        Uploaded once per deployment (an input-boundary ``asarray``), so
        per-tick scoring stays device-resident.  Kept in the backend's
        double precision to mirror ``RidgeModel.scores`` exactly — on
        NumPy the native scoring path is bit-identical to it.
        """
        if self._readout_native is None:
            r = self.model.readout
            f64 = xb.float64
            self._readout_native = (
                xb.asarray(np.asarray(r.feature_mean), dtype=f64),
                xb.asarray(np.asarray(r.feature_std), dtype=f64),
                xb.asarray(np.asarray(r.coef), dtype=f64),
                xb.asarray(np.asarray(r.intercept), dtype=f64),
            )
        return self._readout_native


class _PlannedBucket:
    """One due bucket, frozen under the lock for an off-lock sweep."""

    __slots__ = ("sids", "t_len", "dep", "model_names", "model_row", "k",
                 "u_std", "a_par", "b_par", "resume", "heads")

    def __init__(self, sids, t_len, dep, model_names, model_row, k, u_std,
                 a_par, b_par, resume, heads):
        self.sids = sids
        self.t_len = t_len
        self.dep = dep
        self.model_names = model_names
        self.model_row = model_row
        self.k = k
        self.u_std = u_std
        self.a_par = a_par
        self.b_par = b_par
        self.resume = resume
        self.heads = heads


class ServeEngine:
    """Streaming inference engine with continuous batching.

    Parameters
    ----------
    max_batch, max_wait_ms, deadline_ms, slack_margin_ms, idle_ttl_ms:
        Scheduling knobs; see the module docstring.  ``None`` defers to
        the environment.  ``deadline_ms`` wins over the legacy
        ``max_wait_ms`` alias when both are given.
    window:
        Streaming ring width handed to ``run_streaming``.  Every submitted
        chunk must be at least this many steps long (the resumable-state
        ring invariant); serving needs no backprop window, so the default
        1 keeps per-stream state minimal.
    backend, dtype:
        Array backend spec / precision for the fused sweeps; ``None``
        defers to ``REPRO_BACKEND`` / ``REPRO_DTYPE``.  The bitwise
        batched-equals-serial contract holds on NumPy; device backends
        serve under the usual tolerance contract.
    clock:
        Monotonic time source (seconds); injectable for deterministic
        scheduling tests (and replaced wholesale by the virtual-clock
        replay mode via :meth:`set_clock`).  Defaults to
        :func:`time.monotonic`.

    All public methods take an internal lock; fused sweeps run *outside*
    it, so submits may race ticks from other threads (or an event loop)
    without waiting on compute.
    """

    def __init__(self, *, max_batch: Optional[int] = None,
                 max_wait_ms: Optional[float] = None,
                 deadline_ms: Optional[float] = None,
                 slack_margin_ms=0.0,
                 idle_ttl_ms: Optional[float] = None,
                 max_pending: Optional[int] = None,
                 max_pending_total: int = 0,
                 sweep_retries: int = 1,
                 shed_after_ms: Optional[float] = None,
                 window: int = 1,
                 backend: Optional[str] = None, dtype: Optional[str] = None,
                 clock: Optional[Callable[[], float]] = None):
        self.max_batch = resolve_max_batch(max_batch)
        # deadline default resolution: explicit deadline_ms, then its env
        # var, then the legacy max_wait chain (argument, env var, 0)
        self.deadline_ms = resolve_deadline_ms(
            deadline_ms, default=resolve_max_wait_ms(max_wait_ms))
        if slack_margin_ms == "auto":
            self._auto_margin = True
            self._fixed_margin_s = 0.0
        else:
            self._auto_margin = False
            margin = float(slack_margin_ms)
            if not np.isfinite(margin) or margin < 0.0:
                raise ValueError(
                    f"slack_margin_ms must be 'auto' or a finite number "
                    f">= 0, got {slack_margin_ms!r}"
                )
            self._fixed_margin_s = margin / 1e3
        self.idle_ttl_ms = resolve_idle_ttl_ms(idle_ttl_ms)
        self.max_pending = resolve_max_pending(max_pending)
        self.max_pending_total = int(max_pending_total)
        if self.max_pending_total < 0:
            raise ValueError(
                f"max_pending_total must be >= 0, got {max_pending_total}"
            )
        self.sweep_retries = int(sweep_retries)
        if self.sweep_retries < 0:
            raise ValueError(
                f"sweep_retries must be >= 0, got {sweep_retries}"
            )
        if shed_after_ms is None:
            self.shed_after_ms = 0.0
        else:
            self.shed_after_ms = float(shed_after_ms)
            if not np.isfinite(self.shed_after_ms) or self.shed_after_ms < 0:
                raise ValueError(
                    f"shed_after_ms must be finite and >= 0, got "
                    f"{shed_after_ms}"
                )
        self.window = int(window)
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._backend_spec = backend
        self._dtype = dtype
        self.backend = (default_backend(dtype=dtype) if backend is None
                        else resolve_backend(backend, dtype=dtype))
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.RLock()
        self._deployments: Dict[str, _Deployment] = {}
        self._sessions: Dict[str, StreamSession] = {}
        self._scheduler = DeadlineScheduler()
        self._carries = CarryStore(self.backend)
        self._evicted: Dict[str, dict] = {}
        #: why a session id is no longer open ("closed" / "evicted") —
        #: what turns the bare KeyError into an actionable error
        self._retired: Dict[str, str] = {}
        self._results: deque = deque()
        self._session_counter = 0
        # lifetime stats
        self.total_ticks = 0
        self.total_sweeps = 0
        self.total_sweep_attempts = 0
        self.total_sweep_retries = 0
        self.total_serial_fallbacks = 0
        self.total_chunks = 0
        self.total_rows_computed = 0
        self.total_deadline_chunks = 0
        self.total_violations = 0
        self.total_evictions = 0
        self.total_restores = 0
        self.total_failed_chunks = 0
        self.total_shed = 0
        self.total_backpressure = 0
        self.min_slack_ms: Optional[float] = None

    @property
    def max_wait_ms(self) -> float:
        """Legacy alias: the resolved default deadline budget."""
        return self.deadline_ms

    @property
    def margin_s(self) -> float:
        """Current slack margin in seconds (EWMA when ``"auto"``)."""
        if self._auto_margin:
            return self._scheduler.sweep_ewma_s
        return self._fixed_margin_s

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Swap the engine's time source (virtual-clock replay mode)."""
        with self._lock:
            self._clock = clock

    def now(self) -> float:
        """The engine clock's current reading (seconds)."""
        return self._clock()

    # -------------------------------------------------------------- #
    # deployment / session lifecycle
    # -------------------------------------------------------------- #

    def deploy(self, model: ServableModel) -> str:
        """Register a model for serving; returns its deployment name."""
        with self._lock:
            if model.name in self._deployments:
                raise ValueError(f"model {model.name!r} is already deployed")
            dep = _Deployment(model, self._backend_spec, self._dtype)
            self._deployments[model.name] = dep
            return model.name

    def models(self) -> List[str]:
        with self._lock:
            return list(self._deployments)

    def sessions(self) -> List[str]:
        """Ids of the currently open (non-evicted) sessions."""
        with self._lock:
            return list(self._sessions)

    def open_session(self, model_name: str, *,
                     deadline_ms: Optional[float] = None) -> str:
        """Open a stream against a deployed model; returns the session id.

        ``deadline_ms`` sets this session's default per-chunk budget;
        ``None`` inherits the engine default.
        """
        with self._lock:
            if model_name not in self._deployments:
                raise KeyError(f"no deployed model named {model_name!r}")
            budget = (self.deadline_ms if deadline_ms is None
                      else resolve_deadline_ms(deadline_ms))
            self._session_counter += 1
            session_id = f"s{self._session_counter:05d}"
            self._sessions[session_id] = StreamSession(
                session_id, model_name, deadline_ms=budget,
                opened_at=self._clock(),
            )
            return session_id

    def close_session(self, session_id: str, *, discard: bool = False) -> None:
        """Retire a session; refuses while chunks are pending unless told."""
        with self._lock:
            if session_id in self._evicted and session_id not in self._sessions:
                del self._evicted[session_id]
                return
            sess = self._session(session_id)
            if (sess.pending or sess.in_flight) and not discard:
                raise RuntimeError(
                    f"session {session_id!r} has {len(sess.pending)} pending "
                    f"chunk(s); drain() first or pass discard=True"
                )
            self._scheduler.remove(session_id)
            sess.closed = True
            self._carries.pop(session_id)
            del self._sessions[session_id]
            self._retire(session_id, "closed")

    def submit(self, session_id: str, chunk: np.ndarray, *,
               deadline_ms: Optional[float] = None) -> int:
        """Queue a ``(T, C)`` chunk on a session; returns its sequence no.

        Nothing is computed here — the chunk waits for the next
        :meth:`tick`.  ``T`` must be at least the engine ``window`` (every
        resumed chunk has to fill the state ring) and ``C`` must match the
        model's channel count.  ``deadline_ms`` overrides the session's
        default budget for this chunk only.  Submitting to an evicted
        session restores it transparently from its checkpoint.
        """
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.ndim != 2:
            raise ValueError(
                f"chunk must be (T, C), got shape {chunk.shape}"
            )
        with self._lock:
            if session_id in self._evicted and session_id not in self._sessions:
                self.restore_session(self._evicted[session_id])
            sess = self._session(session_id)
            dep = self._deployments[sess.model_name]
            if chunk.shape[1] != dep.n_channels:
                raise ValueError(
                    f"chunk has {chunk.shape[1]} channels, model "
                    f"{sess.model_name!r} expects {dep.n_channels}"
                )
            if chunk.shape[0] < self.window:
                raise ValueError(
                    f"chunk has {chunk.shape[0]} steps, need >= window="
                    f"{self.window} (streaming ring invariant)"
                )
            if self.max_pending > 0 and len(sess.pending) >= self.max_pending:
                self.total_backpressure += 1
                raise Backpressure(
                    f"session {session_id!r} already queues "
                    f"{len(sess.pending)} chunk(s) (max_pending="
                    f"{self.max_pending}); tick/drain the engine or raise "
                    f"max_pending / {SERVE_MAX_PENDING_ENV}"
                )
            if self.max_pending_total > 0:
                queued = sum(len(s.pending) for s in self._sessions.values())
                if queued >= self.max_pending_total:
                    self.total_backpressure += 1
                    raise Backpressure(
                        f"engine already queues {queued} chunk(s) across "
                        f"sessions (max_pending_total="
                        f"{self.max_pending_total})"
                    )
            budget = (sess.deadline_ms if deadline_ms is None
                      else resolve_deadline_ms(deadline_ms))
            pending = sess.enqueue(chunk, self._clock(), budget)
            if len(sess.pending) == 1 and not sess.in_flight:
                self._schedule_head(sess)
            return pending.seq

    # -------------------------------------------------------------- #
    # checkpoint / restore / eviction
    # -------------------------------------------------------------- #

    def checkpoint_session(self, session_id: str) -> dict:
        """Snapshot an idle session as a versioned JSON-ready document.

        The carry crosses the backend seam once (a declared boundary) as
        float64 lists; on NumPy the round trip through
        :meth:`restore_session` is bit-exact (CPython ``json`` preserves
        finite doubles).  Refuses while chunks are pending or in flight —
        a checkpoint must capture a quiescent stream.
        """
        with self._lock:
            sess = self._session(session_id)
            if sess.pending or sess.in_flight:
                raise RuntimeError(
                    f"session {session_id!r} has pending or in-flight "
                    f"chunks; drain() before checkpointing"
                )
            dep = self._deployments[sess.model_name]
            return {
                "format": SESSION_FORMAT,
                "format_version": SESSION_FORMAT_VERSION,
                "session_id": sess.session_id,
                "model_name": sess.model_name,
                "fingerprint": dep.fingerprint,
                "n_steps": int(sess.n_steps),
                "next_seq": int(sess.next_seq),
                "deadline_ms": float(sess.deadline_ms),
                "window": int(self.window),
                "carry": self._carries.to_host_doc(session_id),
            }

    def restore_session(self, doc: dict) -> str:
        """Re-open a checkpointed session; strict on schema and pipeline.

        The document must target a *currently deployed* model whose
        pipeline fingerprint matches the checkpoint — restoring a carry
        into different numerics would serve subtly wrong scores.
        """
        if not isinstance(doc, dict):
            raise TypeError(
                f"restore_session needs a dict, got {type(doc).__name__}"
            )
        unknown = sorted(set(doc) - _SESSION_KEYS)
        missing = sorted(_SESSION_KEYS - set(doc))
        if unknown or missing:
            parts = []
            if unknown:
                parts.append(f"unknown keys {unknown}")
            if missing:
                parts.append(f"missing keys {missing}")
            raise ValueError(
                f"session document does not match the {SESSION_FORMAT} "
                f"v{SESSION_FORMAT_VERSION} envelope: {'; '.join(parts)}"
            )
        if doc["format"] != SESSION_FORMAT:
            raise ValueError(
                f"not a {SESSION_FORMAT} document (format={doc['format']!r})"
            )
        if doc["format_version"] != SESSION_FORMAT_VERSION:
            raise ValueError(
                f"unsupported {SESSION_FORMAT} format_version "
                f"{doc['format_version']!r}; this release reads version "
                f"{SESSION_FORMAT_VERSION} only"
            )
        with self._lock:
            session_id = str(doc["session_id"])
            if session_id in self._sessions:
                raise ValueError(
                    f"session {session_id!r} is already open"
                )
            model_name = str(doc["model_name"])
            dep = self._deployments.get(model_name)
            if dep is None:
                raise KeyError(
                    f"checkpoint targets model {model_name!r}, which is "
                    f"not deployed"
                )
            if doc["fingerprint"] != dep.fingerprint:
                raise ValueError(
                    f"checkpoint fingerprint does not match the deployed "
                    f"{model_name!r} pipeline; refusing to restore a carry "
                    f"into different numerics"
                )
            if int(doc["window"]) != self.window:
                raise ValueError(
                    f"checkpoint was taken at window {doc['window']}, "
                    f"engine runs window {self.window}"
                )
            sess = StreamSession(
                session_id, model_name,
                deadline_ms=float(doc["deadline_ms"]),
                opened_at=self._clock(),
            )
            sess.n_steps = int(doc["n_steps"])
            sess.next_seq = int(doc["next_seq"])
            self._sessions[session_id] = sess
            self._carries.from_host_doc(session_id, doc["carry"])
            self._evicted.pop(session_id, None)
            self._retired.pop(session_id, None)
            self.total_restores += 1
            # keep the id space collision-free after restores
            try:
                numeric = int(session_id.lstrip("s"))
            except ValueError:
                numeric = 0
            self._session_counter = max(self._session_counter, numeric)
            return session_id

    def evicted_sessions(self) -> List[str]:
        """Ids currently parked as eviction checkpoints."""
        with self._lock:
            return list(self._evicted)

    def _evict_idle(self, report: TickReport) -> None:
        """Checkpoint-and-drop sessions idle beyond ``idle_ttl_ms``."""
        if self.idle_ttl_ms <= 0.0:
            return
        now = self._clock()
        for sid in list(self._sessions):
            sess = self._sessions[sid]
            if sess.pending or sess.in_flight:
                continue
            if (now - sess.last_active) * 1e3 < self.idle_ttl_ms:
                continue
            self._evicted[sid] = self.checkpoint_session(sid)
            self._scheduler.remove(sid)
            self._carries.pop(sid)
            del self._sessions[sid]
            self._retire(sid, "evicted")
            report.evicted += 1
            self.total_evictions += 1

    # -------------------------------------------------------------- #
    # scheduling
    # -------------------------------------------------------------- #

    def tick(self, *, force: bool = False) -> TickReport:
        """Run one scheduler step: pack due buckets, sweep, score.

        The :class:`~repro.serve.scheduler.DeadlineScheduler` yields every
        due (pipeline fingerprint, chunk length) bucket — full, past its
        earliest deadline minus the slack margin, or forced — each as at
        most ``max_batch`` session heads in earliest-deadline-first order,
        and each bucket becomes one fused ``run_streaming`` sweep.  The
        sweeps run *outside* the engine lock (prepare/commit bracket them
        under it), so concurrent submits never wait on compute.

        A failed fused sweep is retried up to ``sweep_retries`` times
        (re-preparing from the untouched carries each time), then the
        bucket falls back to serial per-session sweeps; a session whose
        serial sweep still fails has its head chunk failed as an
        ``error`` :class:`ChunkResult` — one poisoned stream never sinks
        its batch, and no failure mode leaves a chunk in limbo.
        """
        report = TickReport()
        with self._lock:
            tick_ordinal = self.total_ticks
            self.total_ticks += 1
        delay = faults.tick_delay_s(tick_ordinal)
        if delay > 0.0:
            self._apply_delay(delay)
        with self._lock:
            self._evict_idle(report)
            self._shed_overdue(report)
            report.queue_depth = len(self._scheduler)
            if not self._scheduler:
                return report
            now = self._clock()
            plan, held = self._scheduler.select(
                now, force=force, max_batch=self.max_batch,
                margin_s=self.margin_s,
            )
            if not plan:
                report.deferred = held
                return report
        for _, sids in plan:
            self._run_bucket(sids, report)
        with self._lock:
            report.queue_depth = len(self._scheduler)
            if report.sweeps:
                report.occupancy = report.processed / (
                    report.sweeps * self.max_batch)
            self.total_sweeps += report.sweeps
            self.total_chunks += report.processed
            self.total_rows_computed += report.rows_computed
            self.total_violations += report.violations
            if report.min_slack_ms is not None:
                if (self.min_slack_ms is None
                        or report.min_slack_ms < self.min_slack_ms):
                    self.min_slack_ms = report.min_slack_ms
        return report

    def drain(self) -> List[TickReport]:
        """Force ticks until no session has pending or in-flight chunks."""
        reports = []
        while True:
            with self._lock:
                busy = len(self._scheduler) > 0 or any(
                    sess.in_flight or sess.pending
                    for sess in self._sessions.values()
                )
                if not busy:
                    return reports
            reports.append(self.tick(force=True))

    def next_deadline(self) -> Optional[float]:
        """Earliest schedulable deadline (engine-clock), or ``None``.

        The async tick loop sleeps until ``next_deadline() - margin_s``
        instead of polling.
        """
        with self._lock:
            return self._scheduler.next_deadline()

    def pop_results(self) -> List[ChunkResult]:
        """All completed chunk results since the last call, in order."""
        with self._lock:
            out = list(self._results)
            self._results.clear()
            return out

    def stats(self) -> dict:
        """Lifetime scheduling counters (occupancy, deadlines, residency)."""
        with self._lock:
            denom = self.total_sweeps * self.max_batch
            return {
                "ticks": self.total_ticks,
                "sweeps": self.total_sweeps,
                "chunks": self.total_chunks,
                "rows_computed": self.total_rows_computed,
                "mean_occupancy": (self.total_chunks / denom) if denom else 0.0,
                "deadline_chunks": self.total_deadline_chunks,
                "violations": self.total_violations,
                "min_slack_ms": self.min_slack_ms,
                "evictions": self.total_evictions,
                "restores": self.total_restores,
                "sweep_attempts": self.total_sweep_attempts,
                "sweep_retries": self.total_sweep_retries,
                "serial_fallbacks": self.total_serial_fallbacks,
                "failed_chunks": self.total_failed_chunks,
                "shed": self.total_shed,
                "backpressure": self.total_backpressure,
                "carry_domain": self._carries.key,
                "transfers": self.backend.transfers.as_dict(),
            }

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #

    def _retire(self, session_id: str, reason: str) -> None:
        """Remember why an id is gone (bounded: oldest entries roll off)."""
        self._retired[session_id] = reason
        while len(self._retired) > 4096:
            self._retired.pop(next(iter(self._retired)))

    def _session(self, session_id: str) -> StreamSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            pass
        if session_id in self._evicted:
            raise KeyError(
                f"session {session_id!r} was evicted by the idle TTL "
                f"(idle_ttl_ms={self.idle_ttl_ms:g}) but its checkpoint is "
                f"still held: submit() restores it transparently, or call "
                f"restore_session() explicitly"
            )
        reason = self._retired.get(session_id)
        if reason == "evicted":
            raise KeyError(
                f"session {session_id!r} was evicted by the idle TTL "
                f"(idle_ttl_ms={self.idle_ttl_ms:g}) and the engine no "
                f"longer holds its checkpoint; re-open it with "
                f"restore_session(checkpoint) from a saved checkpoint, or "
                f"raise idle_ttl_ms to keep idle sessions resident longer"
            )
        if reason == "closed":
            raise KeyError(
                f"session {session_id!r} was closed; open_session() starts "
                f"a new stream, restore_session(checkpoint) resumes a "
                f"checkpointed one"
            )
        raise KeyError(f"no open session {session_id!r}")

    def _schedule_head(self, sess: StreamSession) -> None:
        """Make a session's (new) head chunk schedulable."""
        dep = self._deployments[sess.model_name]
        key = (dep.fingerprint, sess.head.t_len)
        self._scheduler.enqueue(sess.session_id, key, sess.head.deadline)

    def _prepare_bucket(self, sids: List[str]) -> _PlannedBucket:
        """Freeze one due bucket for an off-lock sweep (lock held).

        Marks every taken session in-flight, stacks the head chunks,
        standardizes them, builds the candidate-axis parameter stacks, and
        assembles the backend-native resume state.
        """
        sessions = [self._sessions[sid] for sid in sids]
        dep = self._deployments[sessions[0].model_name]
        # distinct models of the bucket -> candidate axis (stable order)
        model_names: List[str] = []
        for sess in sessions:
            if sess.model_name not in model_names:
                model_names.append(sess.model_name)
        k = len(model_names)
        model_row = {name: i for i, name in enumerate(model_names)}
        t_len = sessions[0].head.t_len
        chunks = np.stack([sess.head.data for sess in sessions])  # (m, T, C)
        u_std = dep.extractor.standardizer.transform(chunks)
        if k == 1:
            a_par, b_par = dep.model.A, dep.model.B
            lead = (len(sessions),)
        else:
            deps = [self._deployments[name] for name in model_names]
            a_par = np.array([d.model.A for d in deps])
            b_par = np.array([d.model.B for d in deps])
            lead = (k, len(sessions))
        resume = self._assemble_carry(sessions, lead)
        heads = [sess.head for sess in sessions]
        for sess in sessions:
            sess.in_flight = True
        return _PlannedBucket(sids, t_len, dep, model_names, model_row, k,
                              u_std, a_par, b_par, resume, heads)

    def _apply_delay(self, seconds: float) -> None:
        """Serve an injected ``delay_tick`` fault.

        A virtual clock (replay mode) advances logically so no real time
        passes; a wall clock sleeps.  Either way the delay is visible to
        deadline accounting, which is the point of the fault.
        """
        advance = getattr(self._clock, "advance", None)
        if callable(advance):
            advance(seconds)
        else:
            time.sleep(seconds)

    def _shed_overdue(self, report: TickReport) -> None:
        """Drop hopelessly-late deadline chunks as ``Overloaded`` (lock held).

        A head whose deadline is already more than ``shed_after_ms`` past
        cannot be served on time, and sweeping it anyway cascades misses
        onto every chunk queued behind it.  Shedding emits an ``error``
        result (``shed=True``) without touching the carry — the stream
        just has a gap.  Chunks without a deadline budget are never shed.
        """
        if self.shed_after_ms <= 0.0:
            return
        while True:
            now = self._clock()
            cutoff = now - self.shed_after_ms / 1e3
            shed_any = False
            for sid in self._scheduler.overdue(cutoff):
                sess = self._sessions.get(sid)
                if (sess is None or sess.in_flight or not sess.pending
                        or not sess.head.has_deadline):
                    continue
                self._scheduler.remove(sid)
                chunk = sess.drop_head(now)
                self._results.append(ChunkResult(
                    session_id=sid,
                    model_name=sess.model_name,
                    seq=chunk.seq,
                    n_steps=sess.n_steps,
                    features=np.zeros(0),
                    scores=None,
                    label=None,
                    diverged=False,
                    arrival=chunk.arrival,
                    completed=now,
                    batch_sessions=0,
                    batch_models=0,
                    deadline=chunk.deadline,
                    error=(
                        f"Overloaded: chunk seq={chunk.seq} missed its "
                        f"deadline by more than shed_after_ms="
                        f"{self.shed_after_ms:g}; shed without compute"
                    ),
                    shed=True,
                ))
                report.shed += 1
                self.total_shed += 1
                if sess.pending:
                    self._schedule_head(sess)
                shed_any = True
            if not shed_any:
                return

    def _take_bucket(self, sids: List[str]) -> Optional[_PlannedBucket]:
        """(Re-)claim a bucket's sessions for a sweep attempt (lock held).

        Sessions that vanished between attempts (closed, evicted, or shed
        down to an empty queue) are silently dropped; returns ``None``
        when nothing is left to sweep.  Retries re-prepare from the
        untouched :class:`~repro.serve.carry.CarryStore`, so a failed
        attempt can never leak partial state into the next one.
        """
        live: List[str] = []
        for sid in sids:
            sess = self._sessions.get(sid)
            if sess is None or sess.in_flight or not sess.pending:
                continue
            self._scheduler.remove(sid)
            live.append(sid)
        if not live:
            return None
        return self._prepare_bucket(live)

    def _run_bucket(self, sids: List[str], report: TickReport) -> None:
        """Sweep one due bucket with bounded retry and serial fallback.

        Up to ``1 + sweep_retries`` fused attempts; then each session is
        swept serially so one poisoned stream cannot sink its batchmates;
        a session whose serial sweep still fails has its head chunk
        resolved as an ``error`` result via :meth:`_fail_head`.  Every
        path either commits or resolves each taken chunk — nothing is
        left in flight.
        """
        for attempt in range(1 + self.sweep_retries):
            with self._lock:
                prep = self._take_bucket(sids)
            if prep is None:
                return
            t0 = self._clock()
            try:
                result = self._sweep(prep)
            except Exception:
                with self._lock:
                    self._abort_bucket(prep)
                    if attempt < self.sweep_retries:
                        report.sweep_retries += 1
                        self.total_sweep_retries += 1
                continue
            except BaseException:
                with self._lock:
                    self._abort_bucket(prep)
                raise
            elapsed = self._clock() - t0
            with self._lock:
                if self._auto_margin:
                    self._scheduler.observe_sweep(elapsed)
                self._commit_bucket(prep, result, report)
            return
        with self._lock:
            report.serial_fallbacks += 1
            self.total_serial_fallbacks += 1
        for sid in sids:
            with self._lock:
                prep = self._take_bucket([sid])
            if prep is None:
                continue
            try:
                result = self._sweep(prep)
            except Exception as exc:
                with self._lock:
                    self._abort_bucket(prep)
                    self._fail_head(sid, exc, report)
                continue
            except BaseException:
                with self._lock:
                    self._abort_bucket(prep)
                raise
            with self._lock:
                self._commit_bucket(prep, result, report)

    def _fail_head(self, session_id: str, error: BaseException,
                   report: TickReport) -> None:
        """Resolve a session's head chunk as failed (lock held).

        The carry is untouched (the reservoir never consumed the chunk),
        so the stream continues from the state the failed chunk found —
        the same gap semantics as shedding, but attributed to the sweep
        error instead of overload.
        """
        sess = self._sessions.get(session_id)
        if sess is None or not sess.pending:
            return
        self._scheduler.remove(session_id)
        now = self._clock()
        chunk = sess.drop_head(now)
        self._results.append(ChunkResult(
            session_id=session_id,
            model_name=sess.model_name,
            seq=chunk.seq,
            n_steps=sess.n_steps,
            features=np.zeros(0),
            scores=None,
            label=None,
            diverged=False,
            arrival=chunk.arrival,
            completed=now,
            batch_sessions=0,
            batch_models=0,
            deadline=chunk.deadline if chunk.has_deadline else None,
            error=(
                f"sweep failed after {1 + self.sweep_retries} fused "
                f"attempt(s) and a serial retry: "
                f"{type(error).__name__}: {error}"
            ),
        ))
        report.failed_chunks += 1
        self.total_failed_chunks += 1
        if sess.pending:
            self._schedule_head(sess)

    def _sweep(self, prep: _PlannedBucket) -> StreamingResult:
        """The fused array program of one bucket (no lock held)."""
        with self._lock:
            ordinal = self.total_sweep_attempts
            self.total_sweep_attempts += 1
        faults.maybe_raise_sweep(ordinal)
        return prep.dep.extractor.reservoir.run_streaming(
            prep.u_std, prep.a_par, prep.b_par, window=self.window,
            backend=self.backend, resume=prep.resume,
        )

    def _abort_bucket(self, prep: _PlannedBucket) -> None:
        """A sweep failed: put its sessions back where they were (lock held)."""
        for sid in prep.sids:
            sess = self._sessions.get(sid)
            if sess is None:
                continue
            sess.in_flight = False
            if sess.pending and sid not in self._scheduler:
                self._schedule_head(sess)

    def _commit_bucket(self, prep: _PlannedBucket, result: StreamingResult,
                       report: TickReport) -> None:
        """Slice one sweep back into sessions and results (lock held).

        Per-session carries are sliced *device-side* (a same-device copy,
        never a host transfer) and features/scores are computed natively;
        arrays cross to the host only through ``to_numpy_boundary`` when
        the :class:`ChunkResult` is materialized.
        """
        xb = self.backend
        states = result.window_states
        pres = result.window_pre_activations
        p_acc, s_acc = result.dprr_sums
        diverged = np.asarray(result.diverged, dtype=bool)
        k = prep.k
        m = len(prep.sids)
        completed = self._clock()
        for i, sid in enumerate(prep.sids):
            sess = self._sessions.get(sid)
            if sess is None or sess.closed:
                continue  # closed (discarded) while the sweep ran
            row = ((prep.model_row[sess.model_name], i) if k > 1 else (i,))
            carry = StreamingResult(
                window_states=_copy_array(states[row])[None],
                window_pre_activations=_copy_array(pres[row])[None],
                dprr_sums=(_copy_array(p_acc[row])[None],
                           _copy_array(s_acc[row])[None]),
                diverged=np.array([diverged[row]]),
                n_steps=sess.n_steps + prep.t_len,
            )
            chunk = sess.advance(prep.t_len, completed)
            sess.in_flight = False
            self._carries.put(sid, carry)
            dep = self._deployments[sess.model_name]
            feats_native = dep.extractor.dprr.features(carry)  # (1, N_r)
            is_diverged = bool(carry.diverged[0])
            readout = dep.model.readout
            if readout is not None and not is_diverged:
                mean, std, coef, intercept = dep.readout_native(xb)
                z = (xb.asarray(feats_native, dtype=xb.float64) - mean) / std
                scores_native = z @ coef + intercept
                scores = np.asarray(xb.to_numpy_boundary(scores_native))[0]
                label = int(scores.argmax())
            else:
                scores, label = None, None
            feats = np.asarray(xb.to_numpy_boundary(feats_native))[0]
            if chunk.has_deadline:
                slack_ms = (chunk.deadline - completed) * 1e3
                self.total_deadline_chunks += 1
                if slack_ms < 0.0:
                    report.violations += 1
                if (report.min_slack_ms is None
                        or slack_ms < report.min_slack_ms):
                    report.min_slack_ms = slack_ms
            self._results.append(ChunkResult(
                session_id=sess.session_id,
                model_name=sess.model_name,
                seq=chunk.seq,
                n_steps=sess.n_steps,
                features=feats,
                scores=scores,
                label=label,
                diverged=is_diverged,
                arrival=chunk.arrival,
                completed=completed,
                batch_sessions=m,
                batch_models=k,
                deadline=chunk.deadline if chunk.has_deadline else None,
            ))
            report.processed += 1
            if sess.pending:
                self._schedule_head(sess)
        report.sweeps += 1
        report.rows_computed += k * m

    def _assemble_carry(self, sessions: List[StreamSession], lead: tuple
                        ) -> Optional[StreamingResult]:
        """Pack per-session carries into one resumable batch state.

        Fresh sessions (no carry yet) contribute zero rows — exactly the
        fresh-start initial state — so new and resumed streams mix freely
        in one sweep.  For a stacked (K-model) sweep each session's batch-1
        carry is replicated across all K candidate rows; only the row of
        the session's own model is read back afterwards.  All assembly is
        backend-native (the carries already live on the engine backend);
        returns ``None`` when every session is fresh (the plain
        fresh-start path).
        """
        carries = [self._carries.get(sess.session_id) for sess in sessions]
        if all(c is None for c in carries):
            return None
        xb = self.backend
        w = self.window
        nx = int(self._deployments[sessions[0].model_name].model.config.n_nodes)
        stacked = len(lead) == 2
        ring = xb.zeros(lead + (w + 1, nx))
        pre_ring = xb.zeros(lead + (w, nx))
        p_acc = xb.zeros(lead + (nx, nx))
        s_acc = xb.zeros(lead + (nx,))
        diverged = np.zeros(lead, dtype=bool)
        for i, (sess, c) in enumerate(zip(sessions, carries)):
            if c is None:
                continue
            if c.window != w:
                raise ValueError(
                    f"session {sess.session_id!r} carries window "
                    f"{c.window}, engine runs window {w}"
                )
            row = (slice(None), i) if stacked else (i,)
            # broadcast the batch-1 carry across the candidate rows (the
            # trailing dims align; the K axis, when present, replicates)
            ring[row] = c.window_states[0]
            pre_ring[row] = c.window_pre_activations[0]
            p_acc[row] = c.dprr_sums[0][0]
            s_acc[row] = c.dprr_sums[1][0]
            diverged[row] = bool(np.asarray(c.diverged)[0])
        return StreamingResult(
            window_states=ring,
            window_pre_activations=pre_ring,
            dprr_sums=(p_acc, s_acc),
            diverged=diverged,
            n_steps=0,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ServeEngine(max_batch={self.max_batch}, "
            f"deadline_ms={self.deadline_ms}, window={self.window}, "
            f"backend={self.backend.name!r}, "
            f"models={len(self._deployments)}, "
            f"sessions={len(self._sessions)})"
        )
