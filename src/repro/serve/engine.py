"""Continuous-batching scheduler over the fused candidate/batch axes.

The training stack earned its throughput by turning per-candidate,
per-sample Python loops into one fused array program (PR 4/5).  Serving
has the same shape of problem from the other direction: many independent
*streams* trickle chunks in at their own pace, and scoring each chunk
alone wastes the very batch axis the reservoir sweep vectorizes over.

:class:`ServeEngine` closes that gap with continuous batching:

* ``submit()`` appends a chunk to its session's FIFO queue and the session
  to the admission queue — nothing is computed on the submit path.
* ``tick()`` packs the longest admissible FIFO prefix of waiting sessions
  (up to ``max_batch``) into fused sweeps.  Sessions ride the **batch
  axis**; when the packed sessions belong to *different* deployed models
  that share a feature pipeline (equal
  :meth:`~repro.serve.model_store.ServableModel.fingerprint`), the models'
  ``(A, B)`` pairs ride the **candidate axis** of the same sweep — one
  ``(K, N, T)`` program serves K heterogeneous models over N streams.
* Each session's resumable reservoir state (the
  :meth:`~repro.reservoir.modular.ModularDFR.run_streaming` carry) is
  assembled into the batch before the sweep and sliced back out after, so
  a stream may arrive in any chunking.

Batching never changes answers on the NumPy backend: the streaming drive
is evaluated step-wise (chunk- and batch-invariant bits), and every other
op in the sweep — standardization, the per-step element-wise chain, the
``lfilter`` recursion, the DPRR accumulators — is per-sample independent.
A ``max_batch=64`` engine is therefore *bit-identical* to a
``max_batch=1`` engine replaying the same chunks (pinned by tests); the
knobs trade latency against throughput, never correctness.

Scheduling knobs (constructor arguments, falling back to environment
variables):

* ``max_batch`` / ``REPRO_SERVE_MAX_BATCH`` — most sessions per fused
  sweep (default 32).
* ``max_wait_ms`` / ``REPRO_SERVE_MAX_WAIT_MS`` — how long a tick may
  defer a partial batch hoping for more arrivals (default 0: never defer).
  A tick defers only while the batch is short *and* the oldest waiting
  chunk is younger than this; ``tick(force=True)`` (and :meth:`drain`)
  overrides.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.backend import default_backend, resolve_backend
from repro.reservoir.modular import StreamingResult
from repro.serve.model_store import ServableModel
from repro.serve.session import StreamSession

__all__ = [
    "SERVE_MAX_BATCH_ENV",
    "SERVE_MAX_WAIT_ENV",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_WAIT_MS",
    "resolve_max_batch",
    "resolve_max_wait_ms",
    "ChunkResult",
    "TickReport",
    "ServeEngine",
]

#: environment variable bounding sessions per fused sweep
SERVE_MAX_BATCH_ENV = "REPRO_SERVE_MAX_BATCH"
#: environment variable bounding how long a partial batch may wait (ms)
SERVE_MAX_WAIT_ENV = "REPRO_SERVE_MAX_WAIT_MS"

DEFAULT_MAX_BATCH = 32
DEFAULT_MAX_WAIT_MS = 0.0


def resolve_max_batch(value: Optional[int] = None) -> int:
    """``value`` if given, else ``REPRO_SERVE_MAX_BATCH``, else 32."""
    if value is None:
        raw = os.environ.get(SERVE_MAX_BATCH_ENV, "").strip()
        if not raw:
            return DEFAULT_MAX_BATCH
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{SERVE_MAX_BATCH_ENV} must be an integer, got {raw!r}"
            ) from None
    value = int(value)
    if value < 1:
        raise ValueError(f"max_batch must be >= 1, got {value}")
    return value


def resolve_max_wait_ms(value: Optional[float] = None) -> float:
    """``value`` if given, else ``REPRO_SERVE_MAX_WAIT_MS``, else 0."""
    if value is None:
        raw = os.environ.get(SERVE_MAX_WAIT_ENV, "").strip()
        if not raw:
            return DEFAULT_MAX_WAIT_MS
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"{SERVE_MAX_WAIT_ENV} must be a number, got {raw!r}"
            ) from None
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValueError(f"max_wait_ms must be finite and >= 0, got {value}")
    return value


@dataclass
class ChunkResult:
    """One scored chunk, handed back in completion order."""

    session_id: str
    model_name: str
    seq: int                      # per-session chunk index
    n_steps: int                  # cumulative stream length after this chunk
    features: np.ndarray          # (N_r,) DPRR features of the whole stream
    scores: Optional[np.ndarray]  # (N_y,) readout scores, None w/o readout
    label: Optional[int]          # argmax class, None without a readout
    diverged: bool
    arrival: float                # engine-clock submit time
    completed: float              # engine-clock completion time
    batch_sessions: int           # sessions in the fused sweep that scored it
    batch_models: int             # distinct models on that sweep's candidate axis

    @property
    def latency_ms(self) -> float:
        return (self.completed - self.arrival) * 1e3


@dataclass
class TickReport:
    """What one scheduler tick did."""

    processed: int = 0            # chunks completed this tick
    sweeps: int = 0               # fused reservoir sweeps launched
    rows_computed: int = 0        # sum of K * N over the sweeps
    deferred: bool = False        # True: partial batch held for max_wait_ms
    queue_depth: int = 0          # sessions still waiting after the tick
    occupancy: float = 0.0        # processed / (sweeps * max_batch)


class _Deployment:
    """A deployed model plus its rebuilt feature pipeline."""

    __slots__ = ("model", "extractor", "fingerprint", "n_channels")

    def __init__(self, model: ServableModel, backend_spec: Optional[str],
                 dtype: Optional[str]):
        self.model = model
        # rebuild under the *engine's* backend/dtype, not the snapshot's
        # preference — one engine, one numerics contract
        cfg = model.config
        self.extractor = cfg.build()
        self.extractor.dtype = dtype
        self.extractor.set_backend(backend_spec)
        self.fingerprint = model.fingerprint()
        self.n_channels = int(np.asarray(cfg.mask_matrix).shape[1])


class ServeEngine:
    """Streaming inference engine with continuous batching.

    Parameters
    ----------
    max_batch, max_wait_ms:
        Scheduling knobs; ``None`` reads ``REPRO_SERVE_MAX_BATCH`` /
        ``REPRO_SERVE_MAX_WAIT_MS`` (defaults 32 / 0).
    window:
        Streaming ring width handed to ``run_streaming``.  Every submitted
        chunk must be at least this many steps long (the resumable-state
        ring invariant); serving needs no backprop window, so the default
        1 keeps per-stream state minimal.
    backend, dtype:
        Array backend spec / precision for the fused sweeps; ``None``
        defers to ``REPRO_BACKEND`` / ``REPRO_DTYPE``.  The bitwise
        batched-equals-serial contract holds on NumPy; device backends
        serve under the usual tolerance contract.
    clock:
        Monotonic time source (seconds); injectable for deterministic
        scheduling tests.  Defaults to :func:`time.monotonic`.

    All public methods take an internal lock, so submits may race ticks
    from another thread.
    """

    def __init__(self, *, max_batch: Optional[int] = None,
                 max_wait_ms: Optional[float] = None, window: int = 1,
                 backend: Optional[str] = None, dtype: Optional[str] = None,
                 clock: Optional[Callable[[], float]] = None):
        self.max_batch = resolve_max_batch(max_batch)
        self.max_wait_ms = resolve_max_wait_ms(max_wait_ms)
        self.window = int(window)
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._backend_spec = backend
        self._dtype = dtype
        self.backend = (default_backend(dtype=dtype) if backend is None
                        else resolve_backend(backend, dtype=dtype))
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.RLock()
        self._deployments: Dict[str, _Deployment] = {}
        self._sessions: Dict[str, StreamSession] = {}
        self._queue: deque = deque()       # session ids with a pending head
        self._results: deque = deque()
        self._session_counter = 0
        # lifetime stats
        self.total_ticks = 0
        self.total_sweeps = 0
        self.total_chunks = 0
        self.total_rows_computed = 0

    # -------------------------------------------------------------- #
    # deployment / session lifecycle
    # -------------------------------------------------------------- #

    def deploy(self, model: ServableModel) -> str:
        """Register a model for serving; returns its deployment name."""
        with self._lock:
            if model.name in self._deployments:
                raise ValueError(f"model {model.name!r} is already deployed")
            dep = _Deployment(model, self._backend_spec, self._dtype)
            self._deployments[model.name] = dep
            return model.name

    def models(self) -> List[str]:
        with self._lock:
            return list(self._deployments)

    def open_session(self, model_name: str) -> str:
        """Open a stream against a deployed model; returns the session id."""
        with self._lock:
            if model_name not in self._deployments:
                raise KeyError(f"no deployed model named {model_name!r}")
            self._session_counter += 1
            session_id = f"s{self._session_counter:05d}"
            self._sessions[session_id] = StreamSession(session_id, model_name)
            return session_id

    def close_session(self, session_id: str, *, discard: bool = False) -> None:
        """Retire a session; refuses while chunks are pending unless told."""
        with self._lock:
            sess = self._session(session_id)
            if sess.pending and not discard:
                raise RuntimeError(
                    f"session {session_id!r} has {len(sess.pending)} pending "
                    f"chunk(s); drain() first or pass discard=True"
                )
            if sess.pending:
                try:
                    self._queue.remove(session_id)
                except ValueError:
                    pass
            sess.closed = True
            del self._sessions[session_id]

    def submit(self, session_id: str, chunk: np.ndarray) -> int:
        """Queue a ``(T, C)`` chunk on a session; returns its sequence no.

        Nothing is computed here — the chunk waits for the next
        :meth:`tick`.  ``T`` must be at least the engine ``window`` (every
        resumed chunk has to fill the state ring) and ``C`` must match the
        model's channel count.
        """
        chunk = np.asarray(chunk, dtype=np.float64)
        if chunk.ndim != 2:
            raise ValueError(
                f"chunk must be (T, C), got shape {chunk.shape}"
            )
        with self._lock:
            sess = self._session(session_id)
            dep = self._deployments[sess.model_name]
            if chunk.shape[1] != dep.n_channels:
                raise ValueError(
                    f"chunk has {chunk.shape[1]} channels, model "
                    f"{sess.model_name!r} expects {dep.n_channels}"
                )
            if chunk.shape[0] < self.window:
                raise ValueError(
                    f"chunk has {chunk.shape[0]} steps, need >= window="
                    f"{self.window} (streaming ring invariant)"
                )
            pending = sess.enqueue(chunk, self._clock())
            if len(sess.pending) == 1:
                self._queue.append(session_id)
            return pending.seq

    # -------------------------------------------------------------- #
    # scheduling
    # -------------------------------------------------------------- #

    def tick(self, *, force: bool = False) -> TickReport:
        """Run one scheduler step: pack waiting sessions, sweep, score.

        Takes the FIFO prefix of the admission queue (at most
        ``max_batch`` sessions, one head chunk each), buckets it by
        (pipeline fingerprint, chunk length) — only same-shaped chunks
        through the same numerics can share a sweep — and launches one
        fused ``run_streaming`` per bucket.  With ``max_wait_ms > 0`` a
        short batch is deferred while its oldest chunk is younger than the
        deadline; ``force=True`` processes whatever is there.
        """
        with self._lock:
            self.total_ticks += 1
            report = TickReport(queue_depth=len(self._queue))
            if not self._queue:
                return report
            if (not force and len(self._queue) < self.max_batch
                    and self.max_wait_ms > 0.0):
                oldest = min(
                    self._sessions[sid].head.arrival for sid in self._queue
                )
                if (self._clock() - oldest) * 1e3 < self.max_wait_ms:
                    report.deferred = True
                    return report
            taken = [self._queue.popleft()
                     for _ in range(min(self.max_batch, len(self._queue)))]
            buckets: Dict[tuple, List[str]] = {}
            for sid in taken:
                sess = self._sessions[sid]
                dep = self._deployments[sess.model_name]
                key = (dep.fingerprint, sess.head.t_len)
                buckets.setdefault(key, []).append(sid)
            for (_, t_len), sids in buckets.items():
                rows = self._run_bucket(sids, t_len)
                report.sweeps += 1
                report.rows_computed += rows
                report.processed += len(sids)
            # sessions with further queued chunks re-enter at the tail
            for sid in taken:
                if self._sessions[sid].pending:
                    self._queue.append(sid)
            report.queue_depth = len(self._queue)
            if report.sweeps:
                report.occupancy = report.processed / (
                    report.sweeps * self.max_batch)
            self.total_sweeps += report.sweeps
            self.total_chunks += report.processed
            self.total_rows_computed += report.rows_computed
            return report

    def drain(self) -> List[TickReport]:
        """Force ticks until no session has pending chunks."""
        reports = []
        while True:
            with self._lock:
                if not self._queue:
                    return reports
            reports.append(self.tick(force=True))

    def pop_results(self) -> List[ChunkResult]:
        """All completed chunk results since the last call, in order."""
        with self._lock:
            out = list(self._results)
            self._results.clear()
            return out

    def stats(self) -> dict:
        """Lifetime scheduling counters (occupancy, sweeps, rows)."""
        with self._lock:
            denom = self.total_sweeps * self.max_batch
            return {
                "ticks": self.total_ticks,
                "sweeps": self.total_sweeps,
                "chunks": self.total_chunks,
                "rows_computed": self.total_rows_computed,
                "mean_occupancy": (self.total_chunks / denom) if denom else 0.0,
            }

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #

    def _session(self, session_id: str) -> StreamSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"no open session {session_id!r}") from None

    def _run_bucket(self, sids: List[str], t_len: int) -> int:
        """One fused sweep over same-fingerprint, same-length chunks.

        Returns the number of (candidate, session) rows computed.
        """
        sessions = [self._sessions[sid] for sid in sids]
        m = len(sessions)
        dep = self._deployments[sessions[0].model_name]
        xb = self.backend
        # distinct models of the bucket -> candidate axis (stable order)
        model_names: List[str] = []
        for sess in sessions:
            if sess.model_name not in model_names:
                model_names.append(sess.model_name)
        k = len(model_names)
        model_row = {name: i for i, name in enumerate(model_names)}
        chunks = np.stack([sess.head.data for sess in sessions])  # (m, T, C)
        u_std = dep.extractor.standardizer.transform(chunks)
        if k == 1:
            a_par, b_par = dep.model.A, dep.model.B
            lead = (m,)
        else:
            deps = [self._deployments[name] for name in model_names]
            a_par = np.array([d.model.A for d in deps])
            b_par = np.array([d.model.B for d in deps])
            lead = (k, m)
        resume = self._assemble_carry(sessions, lead)
        result = dep.extractor.reservoir.run_streaming(
            u_std, a_par, b_par, window=self.window, backend=xb,
            resume=resume,
        )
        states = xb.to_numpy(result.window_states)
        pres = xb.to_numpy(result.window_pre_activations)
        p_acc = xb.to_numpy(result.dprr_sums[0])
        s_acc = xb.to_numpy(result.dprr_sums[1])
        diverged = np.asarray(result.diverged, dtype=bool)
        completed = self._clock()
        for i, sess in enumerate(sessions):
            row = (model_row[sess.model_name], i) if k > 1 else (i,)
            carry = StreamingResult(
                window_states=states[row][None].copy(),
                window_pre_activations=pres[row][None].copy(),
                dprr_sums=(p_acc[row][None].copy(), s_acc[row][None].copy()),
                diverged=np.array([diverged[row]]),
                n_steps=sess.n_steps + t_len,
            )
            chunk = sess.head
            sess.advance(carry, t_len)
            sess_dep = self._deployments[sess.model_name]
            feats = np.asarray(
                sess_dep.extractor.dprr.features(carry))[0]
            readout = sess_dep.model.readout
            if readout is not None and not carry.diverged[0]:
                scores = readout.scores(feats)[0]
                label = int(scores.argmax())
            else:
                scores, label = None, None
            self._results.append(ChunkResult(
                session_id=sess.session_id,
                model_name=sess.model_name,
                seq=chunk.seq,
                n_steps=sess.n_steps,
                features=feats,
                scores=scores,
                label=label,
                diverged=bool(carry.diverged[0]),
                arrival=chunk.arrival,
                completed=completed,
                batch_sessions=m,
                batch_models=k,
            ))
        return k * m

    def _assemble_carry(self, sessions: List[StreamSession], lead: tuple
                        ) -> Optional[StreamingResult]:
        """Pack per-session carries into one resumable batch state.

        Fresh sessions (no carry yet) contribute zero rows — exactly the
        fresh-start initial state — so new and resumed streams mix freely
        in one sweep.  For a stacked (K-model) sweep each session's batch-1
        carry is replicated across all K candidate rows; only the row of
        the session's own model is read back afterwards.  Returns ``None``
        when every session is fresh (the plain fresh-start path).
        """
        if all(sess.carry is None for sess in sessions):
            return None
        w = self.window
        nx = int(self._deployments[sessions[0].model_name].model.config.n_nodes)
        stacked = len(lead) == 2
        ring = np.zeros(lead + (w + 1, nx))
        pre_ring = np.zeros(lead + (w, nx))
        p_acc = np.zeros(lead + (nx, nx))
        s_acc = np.zeros(lead + (nx,))
        diverged = np.zeros(lead, dtype=bool)
        for i, sess in enumerate(sessions):
            if sess.carry is None:
                continue
            c = sess.carry
            if c.window != w:
                raise ValueError(
                    f"session {sess.session_id!r} carries window "
                    f"{c.window}, engine runs window {w}"
                )
            row = (slice(None), i) if stacked else (i,)
            # broadcast the batch-1 carry across the candidate rows (the
            # trailing dims align; the K axis, when present, replicates)
            ring[row] = np.asarray(c.window_states)[0]
            pre_ring[row] = np.asarray(c.window_pre_activations)[0]
            p_acc[row] = np.asarray(c.dprr_sums[0])[0]
            s_acc[row] = np.asarray(c.dprr_sums[1])[0]
            diverged[row] = bool(np.asarray(c.diverged)[0])
        return StreamingResult(
            window_states=ring,
            window_pre_activations=pre_ring,
            dprr_sums=(p_acc, s_acc),
            diverged=diverged,
            n_steps=0,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ServeEngine(max_batch={self.max_batch}, "
            f"max_wait_ms={self.max_wait_ms}, window={self.window}, "
            f"backend={self.backend.name!r}, "
            f"models={len(self._deployments)}, "
            f"sessions={len(self._sessions)})"
        )
