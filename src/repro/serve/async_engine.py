"""Asyncio front door for the serving engine: an always-on tick loop.

:class:`~repro.serve.engine.ServeEngine` is deliberately passive — nothing
happens until somebody calls ``tick()``.  That makes it deterministic and
replayable, but a real deployment wants the opposite ergonomics: callers
``await`` their chunk results and *somebody else* worries about when to
fire fused sweeps.  :class:`AsyncServeEngine` is that somebody:

* ``await session.submit(chunk)`` returns an :class:`asyncio.Future` that
  resolves to the chunk's :class:`~repro.serve.engine.ChunkResult` when a
  background sweep scores it — callers never poll ``pop_results()``;
* a single background task owns the tick cadence: it sleeps until the
  scheduler's next deadline (minus the engine's slack margin) or until a
  submit wakes it, then runs ``engine.tick()`` on a one-worker thread
  pool via ``run_in_executor`` — the NumPy/torch sweep never blocks the
  event loop, and the single worker serializes ticks so the engine's
  prepare/sweep/commit pipeline stays race-free;
* ``async with AsyncServeEngine(...)`` brackets startup and shutdown:
  exit drains every in-flight and queued chunk (resolving their futures),
  stops the loop, and releases the executor.

Robustness semantics layered on the inner engine's fault handling:

* a submit that hits a pending-queue bound (``max_pending`` /
  ``max_pending_total``) does not raise
  :class:`~repro.serve.engine.Backpressure` at the caller — it *awaits*
  queue space (counted in ``stats()["backpressure_waits"]``) and retries,
  so async producers are flow-controlled instead of crashed;
* a chunk the engine sheds under overload resolves its future with
  :class:`~repro.serve.engine.Overloaded`; a chunk failed after sweep
  retries and the serial fallback resolves with ``RuntimeError`` — every
  future resolves exactly once, no injected fault can leak one.

Because the inner engine's lock only guards bookkeeping (sweeps run
off-lock), submits from the event loop — or from plain threads via
``asyncio.run_coroutine_threadsafe`` — enqueue in microseconds even while
a sweep is running.  The async layer adds no numerics of its own: on the
NumPy backend the stream of results per session is bit-identical to
driving the same chunks through a synchronous ``ServeEngine`` (pinned by
tests).
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serve.engine import (
    Backpressure,
    ChunkResult,
    Overloaded,
    ServeEngine,
    TickReport,
)
from repro.serve.model_store import ServableModel

__all__ = ["AsyncServeEngine", "AsyncServeSession"]

#: default idle heartbeat between ticks when no deadline is scheduled
DEFAULT_TICK_INTERVAL_MS = 50.0


class AsyncServeSession:
    """Handle for one stream on an :class:`AsyncServeEngine`.

    Usable as an async context manager; exit closes the session
    (discarding nothing — pending chunks are awaited by their futures, so
    close only after they resolve, or call ``close(discard=True)``).
    """

    def __init__(self, engine: "AsyncServeEngine", session_id: str):
        self.engine = engine
        self.session_id = session_id

    async def submit(self, chunk: np.ndarray, *,
                     deadline_ms: Optional[float] = None) -> "asyncio.Future":
        """Queue a chunk; returns a future resolving to its ChunkResult."""
        return await self.engine.submit(self.session_id, chunk,
                                        deadline_ms=deadline_ms)

    async def close(self, *, discard: bool = False) -> None:
        await self.engine.close_session(self.session_id, discard=discard)

    async def __aenter__(self) -> "AsyncServeSession":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close(discard=exc_type is not None)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"AsyncServeSession({self.session_id!r})"


class AsyncServeEngine:
    """Deadline-aware asyncio wrapper around a :class:`ServeEngine`.

    Parameters
    ----------
    engine:
        An existing synchronous engine to wrap; ``None`` builds one from
        the remaining keyword arguments (which are passed through to
        :class:`ServeEngine` verbatim — ``max_batch``, ``deadline_ms``,
        ``slack_margin_ms``, ``backend`` ...).
    tick_interval_ms:
        Idle heartbeat: how long the background loop sleeps when no
        deadline is scheduled and nothing wakes it.  With deadlines set
        this is only a safety net — the loop normally sleeps *exactly*
        until the next deadline minus the slack margin.

    Use as ``async with AsyncServeEngine(...) as eng:``; the context exit
    drains and shuts the loop down.  All coroutine methods must be called
    from the event loop that entered the context (threads interoperate
    via ``asyncio.run_coroutine_threadsafe``).
    """

    def __init__(self, engine: Optional[ServeEngine] = None, *,
                 tick_interval_ms: float = DEFAULT_TICK_INTERVAL_MS,
                 **engine_kwargs):
        if engine is not None and engine_kwargs:
            raise ValueError(
                "pass either a prebuilt engine or ServeEngine keyword "
                "arguments, not both"
            )
        self.engine = engine if engine is not None else ServeEngine(
            **engine_kwargs)
        tick_interval_ms = float(tick_interval_ms)
        if not tick_interval_ms > 0.0:
            raise ValueError(
                f"tick_interval_ms must be > 0, got {tick_interval_ms}"
            )
        self._tick_interval_s = tick_interval_ms / 1e3
        self._futures: Dict[Tuple[str, int], asyncio.Future] = {}
        self._orphans: deque = deque()  # results with no registered future
        self._reports: List[TickReport] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_task: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._space: Optional[asyncio.Event] = None
        self._stopping = False
        self._started = False
        #: how many submits stalled awaiting queue space (backpressure)
        self.backpressure_waits = 0

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    async def start(self) -> "AsyncServeEngine":
        """Launch the background tick loop (idempotent)."""
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._space = asyncio.Event()
        self._space.set()
        # one worker: ticks are serialized, sweeps never block the loop
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-tick")
        self._stopping = False
        self._started = True
        self._loop_task = self._loop.create_task(self._run())
        return self

    async def close(self) -> None:
        """Drain every queued chunk, stop the loop, release the executor."""
        if not self._started:
            return
        await self.drain()
        self._stopping = True
        self._wake.set()
        self._space.set()  # backpressure waiters must not outlive the loop
        try:
            await self._loop_task
        except Exception:
            # the loop already failed every waiting future with this
            # exception; shutdown itself should still complete
            pass
        for session_id in self.engine.sessions():
            self.engine.close_session(session_id, discard=True)
        self._executor.shutdown(wait=True)
        self._executor = None
        self._loop_task = None
        self._started = False

    async def __aenter__(self) -> "AsyncServeEngine":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # -------------------------------------------------------------- #
    # serving API
    # -------------------------------------------------------------- #

    def deploy(self, model: ServableModel) -> str:
        return self.engine.deploy(model)

    async def open_session(self, model_name: str, *,
                           deadline_ms: Optional[float] = None
                           ) -> AsyncServeSession:
        session_id = self.engine.open_session(model_name,
                                              deadline_ms=deadline_ms)
        return AsyncServeSession(self, session_id)

    async def submit(self, session_id: str, chunk: np.ndarray, *,
                     deadline_ms: Optional[float] = None) -> "asyncio.Future":
        """Queue a chunk and return the future of its result.

        The future is registered before control returns to the event
        loop, so the background dispatcher (which runs on the same loop)
        can never complete the chunk first.  A pending-queue bound does
        not raise here: the coroutine awaits queue space (the background
        loop frees some by completing, failing, or shedding chunks) and
        retries the submit — backpressure, not an exception.
        """
        if not self._started:
            raise RuntimeError(
                "AsyncServeEngine is not running; use 'async with' or "
                "await start() first"
            )
        while True:
            if self._stopping:
                raise RuntimeError(
                    "AsyncServeEngine is shutting down; submit rejected"
                )
            try:
                seq = self.engine.submit(session_id, chunk,
                                         deadline_ms=deadline_ms)
                break
            except Backpressure:
                if self._loop_task is None or self._loop_task.done():
                    raise  # nobody left to free queue space
                self.backpressure_waits += 1
                self._space.clear()
                self._wake.set()  # nudge the loop: tick now, free space
                await self._space.wait()
        future = self._loop.create_future()
        self._futures[(session_id, seq)] = future
        self._wake.set()
        return future

    async def close_session(self, session_id: str, *,
                            discard: bool = False) -> None:
        if discard:
            for key in [k for k in self._futures if k[0] == session_id]:
                future = self._futures.pop(key)
                if not future.done():
                    future.cancel()
        self.engine.close_session(session_id, discard=discard)

    async def drain(self) -> None:
        """Force ticks until every submitted chunk's future is resolved."""
        while self._futures:
            await self._loop.run_in_executor(self._executor,
                                             self.engine.drain)
            self._dispatch()
            await asyncio.sleep(0)

    def pop_results(self) -> List[ChunkResult]:
        """Results that arrived without a registered future (rare: direct
        submits on the inner engine)."""
        out = list(self._orphans)
        self._orphans.clear()
        return out

    def pop_reports(self) -> List[TickReport]:
        """Tick reports accumulated by the background loop."""
        out = self._reports
        self._reports = []
        return out

    def stats(self) -> dict:
        out = self.engine.stats()
        out["backpressure_waits"] = self.backpressure_waits
        return out

    # -------------------------------------------------------------- #
    # background loop
    # -------------------------------------------------------------- #

    async def _run(self) -> None:
        try:
            while not self._stopping:
                report = await self._loop.run_in_executor(
                    self._executor, self.engine.tick)
                self._reports.append(report)
                self._dispatch()
                if report.processed:
                    continue  # keep sweeping while work is flowing
                await self._sleep_until_due()
        except Exception as exc:  # a sweep blew up: fail every waiter
            for future in self._futures.values():
                if not future.done():
                    future.set_exception(exc)
            self._futures.clear()
            if self._space is not None:
                self._space.set()  # release backpressure waiters to re-raise
            raise

    async def _sleep_until_due(self) -> None:
        """Sleep until the next deadline (minus margin), a wake, or the
        idle heartbeat — whichever comes first."""
        deadline = self.engine.next_deadline()
        if deadline is None:
            timeout = self._tick_interval_s
        else:
            timeout = deadline - self.engine.margin_s - self.engine.now()
            timeout = min(max(timeout, 0.0), self._tick_interval_s)
        self._wake.clear()
        if timeout > 0.0:
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass

    def _dispatch(self) -> None:
        """Resolve futures for every freshly completed chunk.

        Shed chunks resolve with :class:`Overloaded`, chunks failed after
        all sweep recovery with ``RuntimeError`` — never a silent drop, so
        no fault can leak an unresolved future.  Any completion frees
        queue space, so backpressure waiters are released here.
        """
        freed = False
        for result in self.engine.pop_results():
            freed = True
            key = (result.session_id, result.seq)
            future = self._futures.pop(key, None)
            if future is None:
                self._orphans.append(result)
            elif future.done():
                pass
            elif result.shed:
                future.set_exception(Overloaded(result.error))
            elif result.error is not None:
                future.set_exception(RuntimeError(result.error))
            else:
                future.set_result(result)
        if freed and self._space is not None:
            self._space.set()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"AsyncServeEngine(running={self._started}, "
            f"waiting={len(self._futures)}, engine={self.engine!r})"
        )
