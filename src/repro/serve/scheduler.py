"""Earliest-deadline-first batch scheduling for the serving engine.

PR 7's engine had exactly one latency control: a global ``max_wait_ms``
that deferred *every* partial batch while the oldest waiting chunk was
young enough.  That is a throughput knob wearing a latency costume — one
slow stream's age gates every other stream's batch, and nothing in the
report says whether any particular chunk made its latency target.

This module replaces it with per-chunk deadlines:

* every :class:`~repro.serve.session.PendingChunk` carries an absolute
  ``deadline`` (engine-clock seconds), resolved at submit time from the
  per-submit override, the session default, or the engine default
  (``REPRO_SERVE_DEADLINE_MS``);
* :class:`DeadlineScheduler` keeps one min-heap per (pipeline
  fingerprint, chunk length) bucket, ordered by ``(deadline, submit
  counter)`` — earliest deadline first, FIFO among equal deadlines (a
  zero budget makes every deadline equal its arrival, so the legacy FIFO
  behavior falls out as the EDF degenerate case);
* a bucket *fires* when it is full (``max_batch`` heads ready), when its
  earliest deadline minus a slack margin has arrived, or on ``force`` —
  so one expiring chunk releases exactly its own bucket as a partial
  batch instead of holding the whole queue hostage;
* the slack margin can be a fixed number of milliseconds or ``"auto"``,
  an EWMA of measured sweep durations — fire *early* by about one sweep
  so the result lands before the deadline rather than starting at it.

The scheduler is pure bookkeeping: no arrays, no clock reads, no locks
(the engine's lock guards every call).  That keeps it unit-testable with
an injected clock and keeps EDF ordering deterministic.
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "SERVE_DEADLINE_ENV",
    "SERVE_IDLE_TTL_ENV",
    "DEFAULT_DEADLINE_MS",
    "resolve_deadline_ms",
    "resolve_idle_ttl_ms",
    "DeadlineScheduler",
]

#: environment variable: default per-chunk deadline budget (milliseconds)
SERVE_DEADLINE_ENV = "REPRO_SERVE_DEADLINE_MS"
#: environment variable: idle-session eviction TTL (milliseconds, 0 = off)
SERVE_IDLE_TTL_ENV = "REPRO_SERVE_IDLE_TTL_MS"

DEFAULT_DEADLINE_MS = 0.0


def _resolve_ms(value: Optional[float], env_var: str, default: float,
                what: str) -> float:
    if value is None:
        raw = os.environ.get(env_var, "").strip()
        if not raw:
            return default
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"{env_var} must be a number, got {raw!r}"
            ) from None
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValueError(f"{what} must be finite and >= 0, got {value}")
    return value


def resolve_deadline_ms(value: Optional[float] = None, *,
                        default: float = DEFAULT_DEADLINE_MS) -> float:
    """``value`` if given, else ``REPRO_SERVE_DEADLINE_MS``, else ``default``.

    ``default`` lets the engine chain the legacy ``max_wait_ms``
    resolution behind the deadline knob (deadline wins when both are set).
    A budget of 0 means "due immediately": the chunk's deadline equals its
    arrival, every tick fires it, and it is excluded from violation
    accounting — exactly the legacy never-defer default.
    """
    return _resolve_ms(value, SERVE_DEADLINE_ENV, default, "deadline_ms")


def resolve_idle_ttl_ms(value: Optional[float] = None) -> float:
    """``value`` if given, else ``REPRO_SERVE_IDLE_TTL_MS``, else 0 (off)."""
    return _resolve_ms(value, SERVE_IDLE_TTL_ENV, 0.0, "idle_ttl_ms")


class _Entry:
    """One schedulable session head; ``valid`` flips on lazy removal."""

    __slots__ = ("deadline", "counter", "session_id", "key", "valid")

    def __init__(self, deadline: float, counter: int, session_id: str,
                 key: tuple):
        self.deadline = deadline
        self.counter = counter
        self.session_id = session_id
        self.key = key
        self.valid = True

    def __lt__(self, other: "_Entry") -> bool:
        return (self.deadline, self.counter) < (other.deadline, other.counter)


class DeadlineScheduler:
    """Per-bucket EDF heaps over schedulable session heads.

    A session appears at most once (only its FIFO head is schedulable);
    the engine enqueues the next chunk when it commits the previous one.
    Removal is lazy (entries are invalidated in place and skipped on pop),
    so ``remove`` is O(1) and heaps never need rebuilding.
    """

    def __init__(self):
        self._buckets: Dict[tuple, List[_Entry]] = {}
        self._entries: Dict[str, _Entry] = {}
        self._counter = 0
        #: EWMA of measured sweep durations (seconds) for the "auto" margin
        self.sweep_ewma_s = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._entries

    def enqueue(self, session_id: str, key: tuple, deadline: float) -> None:
        """Make a session's head chunk schedulable under ``key``."""
        if session_id in self._entries:
            raise RuntimeError(
                f"session {session_id!r} is already scheduled; only the "
                f"FIFO head of a session may be schedulable"
            )
        entry = _Entry(float(deadline), self._counter, session_id, key)
        self._counter += 1
        self._entries[session_id] = entry
        heapq.heappush(self._buckets.setdefault(key, []), entry)

    def remove(self, session_id: str) -> None:
        """Drop a session's entry (close/evict); no-op when absent."""
        entry = self._entries.pop(session_id, None)
        if entry is not None:
            entry.valid = False

    def _prune(self, key: tuple) -> Optional[_Entry]:
        """Pop invalidated entries off a bucket head; return the live head."""
        heap = self._buckets.get(key)
        if heap is None:
            return None
        while heap and not heap[0].valid:
            heapq.heappop(heap)
        if not heap:
            del self._buckets[key]
            return None
        return heap[0]

    def overdue(self, cutoff: float) -> List[str]:
        """Session ids whose scheduled deadline lies before ``cutoff``.

        The engine's overload shedding asks this with ``now - grace``:
        any head already overdue by more than the grace window is a lost
        cause, and serving it would only cascade misses onto the chunks
        behind it.
        """
        return [sid for sid, entry in self._entries.items()
                if entry.valid and entry.deadline < cutoff]

    def next_deadline(self) -> Optional[float]:
        """Earliest live deadline across all buckets, or ``None``."""
        best = None
        for key in list(self._buckets):
            head = self._prune(key)
            if head is not None and (best is None or head.deadline < best):
                best = head.deadline
        return best

    def select(self, now: float, *, force: bool, max_batch: int,
               margin_s: float = 0.0) -> Tuple[List[Tuple[tuple, List[str]]],
                                               bool]:
        """Pop every due bucket's EDF prefix; report whether any was held.

        A bucket is *due* when ``force`` is set, when it holds at least
        ``max_batch`` ready heads, or when its earliest deadline minus
        ``margin_s`` has passed.  Each due bucket yields at most
        ``max_batch`` session ids in EDF order (ties broken by submit
        order).  Returns ``(plan, held)`` where ``plan`` is a list of
        ``(key, session_ids)`` and ``held`` is True when at least one
        non-empty bucket was deferred.
        """
        plan: List[Tuple[tuple, List[str]]] = []
        held = False
        for key in list(self._buckets):
            head = self._prune(key)
            if head is None:
                continue
            ready = len(self._buckets[key])
            due = (force or ready >= max_batch
                   or now >= head.deadline - margin_s)
            if not due:
                held = True
                continue
            taken: List[str] = []
            heap = self._buckets[key]
            while heap and len(taken) < max_batch:
                entry = heapq.heappop(heap)
                if not entry.valid:
                    continue
                del self._entries[entry.session_id]
                taken.append(entry.session_id)
            if not heap:
                del self._buckets[key]
            if taken:
                plan.append((key, taken))
            if heap:
                held = True  # overflow beyond max_batch waits for next tick
        return plan, held

    def observe_sweep(self, seconds: float, *, alpha: float = 0.3) -> None:
        """Fold one measured sweep duration into the EWMA slack margin."""
        seconds = max(float(seconds), 0.0)
        if self.sweep_ewma_s == 0.0:
            self.sweep_ewma_s = seconds
        else:
            self.sweep_ewma_s += alpha * (seconds - self.sweep_ewma_s)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DeadlineScheduler(entries={len(self._entries)}, "
            f"buckets={len(self._buckets)})"
        )
