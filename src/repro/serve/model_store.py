"""Versioned single-file persistence for trained DFR pipelines.

A deployed model is three things: the frozen feature pipeline (an
:class:`~repro.core.pipeline.ExtractorConfig` — mask matrix, standardizer
statistics, nonlinearity, DPRR settings), the optimized reservoir
parameters ``(A, B)``, and optionally the fitted ridge readout.  All of it
is plain floats and small arrays, and CPython's ``json`` round-trips finite
doubles exactly (``repr``-based serialization), so one human-readable JSON
document restores the pipeline *bit for bit* — no pickle, no NPZ sidecar.

The document is versioned twice over: the envelope carries
``format``/``format_version`` and the embedded config carries its own
schema version, and every ``from_dict`` on the way in is strict (unknown or
missing keys raise).  A snapshot written by an incompatible release fails
loudly at load time instead of serving subtly wrong scores.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.pipeline import ExtractorConfig
from repro.readout.ridge import RidgeModel

__all__ = [
    "MODEL_FORMAT",
    "MODEL_FORMAT_VERSION",
    "ServableModel",
    "save_model",
    "load_model",
]

#: magic string identifying a serialized model document
MODEL_FORMAT = "repro-dfr-model"
#: envelope schema version; bump on any envelope field change
MODEL_FORMAT_VERSION = 1

_ENVELOPE_KEYS = {"format", "format_version", "name", "A", "B", "config",
                  "readout"}


@dataclass
class ServableModel:
    """A trained DFR pipeline frozen for serving.

    Parameters
    ----------
    name:
        Deployment name (the key sessions open against).
    A, B:
        The optimized reservoir parameters.
    config:
        Snapshot of the fitted feature extractor.
    readout:
        The fitted ridge readout, or ``None`` for a feature-only deployment
        (the engine then returns DPRR features without scores).
    """

    name: str
    A: float
    B: float
    config: ExtractorConfig
    readout: Optional[RidgeModel] = None

    def __post_init__(self):
        self.A = float(self.A)
        self.B = float(self.B)
        if not np.isfinite(self.A) or not np.isfinite(self.B):
            raise ValueError(
                f"A and B must be finite, got A={self.A!r}, B={self.B!r}"
            )

    @classmethod
    def from_classifier(cls, clf, name: str) -> "ServableModel":
        """Freeze a fitted :class:`~repro.core.pipeline.DFRClassifier`."""
        if getattr(clf, "ridge_", None) is None:
            raise RuntimeError("classifier must be fitted before freezing")
        return cls(
            name=name,
            A=float(clf.A_),
            B=float(clf.B_),
            config=clf.extractor.snapshot(),
            readout=clf.ridge_,
        )

    def fingerprint(self) -> str:
        """Digest of the *numerics-relevant* feature pipeline.

        Two deployed models with equal fingerprints produce identical
        standardized inputs and mask drives, so the engine may pack their
        sessions into one fused sweep with the models' ``(A, B)`` pairs on
        the candidate axis.  ``A``/``B`` themselves, the readout, and the
        backend/dtype *preferences* are deliberately excluded — the first
        two live on the candidate axis, the last two are overridden by the
        engine's own backend.
        """
        cfg = self.config.to_dict()
        for key in ("backend", "dtype", "feature_batch_size"):
            cfg.pop(key)
        payload = json.dumps(cfg, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        """The versioned JSON envelope (see :func:`save_model`)."""
        return {
            "format": MODEL_FORMAT,
            "format_version": MODEL_FORMAT_VERSION,
            "name": self.name,
            "A": self.A,
            "B": self.B,
            "config": self.config.to_dict(),
            "readout": None if self.readout is None else self.readout.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServableModel":
        """Rebuild from :meth:`to_dict` output — strictly versioned."""
        if not isinstance(data, dict):
            raise TypeError(
                f"ServableModel.from_dict needs a dict, got "
                f"{type(data).__name__}"
            )
        unknown = sorted(set(data) - _ENVELOPE_KEYS)
        missing = sorted(_ENVELOPE_KEYS - set(data))
        if unknown or missing:
            parts = []
            if unknown:
                parts.append(f"unknown keys {unknown}")
            if missing:
                parts.append(f"missing keys {missing}")
            raise ValueError(
                f"model document does not match the {MODEL_FORMAT} "
                f"v{MODEL_FORMAT_VERSION} envelope: {'; '.join(parts)}"
            )
        if data["format"] != MODEL_FORMAT:
            raise ValueError(
                f"not a {MODEL_FORMAT} document (format={data['format']!r})"
            )
        if data["format_version"] != MODEL_FORMAT_VERSION:
            raise ValueError(
                f"unsupported {MODEL_FORMAT} format_version "
                f"{data['format_version']!r}; this release reads version "
                f"{MODEL_FORMAT_VERSION} only"
            )
        readout = data["readout"]
        return cls(
            name=str(data["name"]),
            A=data["A"],
            B=data["B"],
            config=ExtractorConfig.from_dict(data["config"]),
            readout=None if readout is None else RidgeModel.from_dict(readout),
        )


def save_model(model: ServableModel, path: str) -> str:
    """Write ``model`` to ``path`` as one JSON document; returns ``path``.

    The write is atomic (temp file + ``os.replace``) so a crashed save
    never leaves a truncated snapshot where a loadable one used to be.
    """
    doc = json.dumps(model.to_dict(), indent=2, sort_keys=False)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(doc)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_model(path: str) -> ServableModel:
    """Read a :func:`save_model` snapshot back; strict on schema."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    return ServableModel.from_dict(data)
