"""Seeded traffic replay and latency accounting for the serving engine.

A :class:`ReplayTrace` is a fully deterministic description of load: each
of ``n_sessions`` streams opens against a model and emits
``chunks_per_session`` chunks whose inter-arrival gaps are exponential
(per-stream Poisson arrivals) and whose sample data comes from the same
seeded generator.  Replaying the identical trace through two differently
configured engines is therefore an apples-to-apples comparison — and
because batching is bit-stable on NumPy, their *outputs* must match
exactly even though their batch compositions differ.

:func:`replay` drives an engine with the trace in (compressed) real time:
submit every chunk whose arrival has passed, tick, repeat.  Latency is
wall-clock from submit to completion; throughput counts whole sessions
retired per second.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serve.engine import ChunkResult, ServeEngine
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["TraceEvent", "ReplayTrace", "poisson_trace", "ReplayReport",
           "replay"]


@dataclass
class TraceEvent:
    """One chunk arrival: stream index, offset seconds, payload."""

    t: float                # arrival offset from trace start (seconds)
    stream: int             # index into ReplayTrace.stream_models
    seq: int                # per-stream chunk number
    data: np.ndarray        # (T, C) input chunk


@dataclass
class ReplayTrace:
    """A deterministic arrival schedule over a set of streams."""

    stream_models: List[str]    # model name per stream
    events: List[TraceEvent]    # sorted by arrival offset
    rate_hz: float
    seed: int

    @property
    def n_sessions(self) -> int:
        return len(self.stream_models)

    @property
    def n_chunks(self) -> int:
        return len(self.events)


def poisson_trace(
    model_names: Sequence[str],
    *,
    n_sessions: int,
    chunks_per_session: int,
    chunk_len: int,
    n_channels: int,
    rate_hz: float = 200.0,
    seed: SeedLike = 0,
) -> ReplayTrace:
    """Build a seeded Poisson-arrival trace.

    Each stream is assigned a model round-robin from ``model_names``, opens
    at an exponential offset from the trace start, and emits its chunks
    with exponential inter-arrival gaps of mean ``1 / rate_hz`` seconds.
    Chunk samples are standard-normal draws from the same seeded generator,
    so two calls with equal arguments yield byte-identical traces.
    """
    if n_sessions < 1 or chunks_per_session < 1:
        raise ValueError("need at least one session and one chunk each")
    if chunk_len < 1 or n_channels < 1:
        raise ValueError("chunk_len and n_channels must be >= 1")
    if not np.isfinite(rate_hz) or rate_hz <= 0:
        raise ValueError(f"rate_hz must be positive, got {rate_hz!r}")
    rng = ensure_rng(seed)
    stream_models = [model_names[i % len(model_names)]
                     for i in range(n_sessions)]
    events: List[TraceEvent] = []
    for stream in range(n_sessions):
        t = 0.0
        for seq in range(chunks_per_session):
            t += float(rng.exponential(1.0 / rate_hz))
            data = rng.standard_normal((chunk_len, n_channels))
            events.append(TraceEvent(t=t, stream=stream, seq=seq, data=data))
    # stable sort: simultaneous arrivals keep stream order deterministic
    events.sort(key=lambda e: (e.t, e.stream, e.seq))
    seed_tag = int(seed) if isinstance(seed, (int, np.integer)) else -1
    return ReplayTrace(stream_models=stream_models, events=events,
                       rate_hz=float(rate_hz), seed=seed_tag)


@dataclass
class ReplayReport:
    """Throughput/latency summary of one replay run."""

    n_sessions: int
    n_chunks: int
    wall_s: float
    sessions_per_sec: float
    chunks_per_sec: float
    p50_ms: float
    p99_ms: float
    mean_occupancy: float
    sweeps: int
    rows_computed: int
    results: List[ChunkResult]

    def to_dict(self) -> dict:
        """JSON-ready summary (results themselves excluded)."""
        return {
            "n_sessions": self.n_sessions,
            "n_chunks": self.n_chunks,
            "wall_s": self.wall_s,
            "sessions_per_sec": self.sessions_per_sec,
            "chunks_per_sec": self.chunks_per_sec,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "mean_occupancy": self.mean_occupancy,
            "sweeps": self.sweeps,
            "rows_computed": self.rows_computed,
        }


def replay(
    engine: ServeEngine,
    trace: ReplayTrace,
    *,
    time_scale: float = 0.0,
    clock=None,
) -> ReplayReport:
    """Replay ``trace`` through ``engine`` and measure latency/throughput.

    ``time_scale`` compresses the trace's arrival schedule: 1.0 replays at
    the recorded rate, 0.0 (the default) releases arrivals as fast as the
    engine can absorb them — arrival *order* is preserved either way, so
    outputs are identical and only the measured latencies change.  The
    engine is ticked between arrival batches and drained at the end; every
    session is closed before returning.
    """
    if time_scale < 0:
        raise ValueError(f"time_scale must be >= 0, got {time_scale!r}")
    now = clock if clock is not None else time.perf_counter
    session_ids: Dict[int, str] = {}
    t0 = now()
    i = 0
    events = trace.events
    while i < len(events):
        elapsed = now() - t0
        due = i
        while due < len(events) and events[due].t * time_scale <= elapsed:
            due += 1
        if due == i:
            # nothing due yet: tick anyway (may flush a deferred batch),
            # then let the clock advance
            engine.tick()
            continue
        for event in events[i:due]:
            sid = session_ids.get(event.stream)
            if sid is None:
                sid = engine.open_session(trace.stream_models[event.stream])
                session_ids[event.stream] = sid
            engine.submit(sid, event.data)
        i = due
        engine.tick()
    engine.drain()
    wall_s = now() - t0
    results = engine.pop_results()
    for stream, sid in session_ids.items():
        engine.close_session(sid)
    stats = engine.stats()
    lat = np.array([r.latency_ms for r in results]) if results else np.zeros(1)
    return ReplayReport(
        n_sessions=trace.n_sessions,
        n_chunks=len(results),
        wall_s=wall_s,
        sessions_per_sec=trace.n_sessions / wall_s if wall_s > 0 else 0.0,
        chunks_per_sec=len(results) / wall_s if wall_s > 0 else 0.0,
        p50_ms=float(np.percentile(lat, 50)),
        p99_ms=float(np.percentile(lat, 99)),
        mean_occupancy=stats["mean_occupancy"],
        sweeps=stats["sweeps"],
        rows_computed=stats["rows_computed"],
        results=results,
    )
