"""Seeded traffic replay and latency accounting for the serving engine.

A :class:`ReplayTrace` is a fully deterministic description of load: each
of ``n_sessions`` streams opens against a model and emits
``chunks_per_session`` chunks whose inter-arrival gaps are exponential
(per-stream Poisson arrivals) and whose sample data comes from the same
seeded generator.  Replaying the identical trace through two differently
configured engines is therefore an apples-to-apples comparison — and
because batching is bit-stable on NumPy, their *outputs* must match
exactly even though their batch compositions differ.

:func:`replay` drives an engine with the trace in (compressed) real time:
submit every chunk whose arrival has passed, tick, repeat.  Latency is
wall-clock from submit to completion; throughput counts whole sessions
retired per second.

Two additional drivers share the trace format:

* ``replay(..., clock="virtual")`` replays on a :class:`VirtualClock`
  instead of the wall: time jumps straight from one arrival or deadline
  to the next, so a trace that *describes* seconds of traffic replays in
  milliseconds of CPU with fully deterministic latencies — deadline
  semantics (EDF packing, slack-margin firing, violations) are exercised
  exactly, which is what the CI smoke leg runs;
* :func:`replay_async` drives an :class:`~repro.serve.async_engine.
  AsyncServeEngine` on the real clock: arrivals become ``asyncio.sleep``
  delays and completions are awaited futures, measuring what the
  background tick loop actually delivers.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import faults
from repro.serve.engine import ChunkResult, ServeEngine
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["TraceEvent", "ReplayTrace", "poisson_trace", "spec_trace",
           "ReplayReport", "VirtualClock", "replay", "replay_async"]


class VirtualClock:
    """A manually advanced, monotonic time source for deterministic replay.

    Calling it reads the current virtual time (seconds); :meth:`set`
    moves forward to an absolute time (backward moves are ignored — the
    clock never violates monotonicity) and :meth:`advance` steps by a
    delta.  Handed to :meth:`ServeEngine.set_clock`, it makes every
    arrival stamp, deadline and latency a pure function of the trace.
    """

    __slots__ = ("now_s",)

    def __init__(self, start: float = 0.0):
        self.now_s = float(start)

    def __call__(self) -> float:
        return self.now_s

    def set(self, t: float) -> None:
        t = float(t)
        if t > self.now_s:
            self.now_s = t

    def advance(self, dt: float) -> None:
        dt = float(dt)
        if dt < 0.0:
            raise ValueError(f"cannot advance a clock backward by {dt}")
        self.now_s += dt


@dataclass
class TraceEvent:
    """One chunk arrival: stream index, offset seconds, payload."""

    t: float                # arrival offset from trace start (seconds)
    stream: int             # index into ReplayTrace.stream_models
    seq: int                # per-stream chunk number
    data: np.ndarray        # (T, C) input chunk


@dataclass
class ReplayTrace:
    """A deterministic arrival schedule over a set of streams."""

    stream_models: List[str]    # model name per stream
    events: List[TraceEvent]    # sorted by arrival offset
    rate_hz: float
    seed: int

    @property
    def n_sessions(self) -> int:
        return len(self.stream_models)

    @property
    def n_chunks(self) -> int:
        return len(self.events)


def poisson_trace(
    model_names: Sequence[str],
    *,
    n_sessions: int,
    chunks_per_session: int,
    chunk_len: int,
    n_channels: int,
    rate_hz: float = 200.0,
    seed: SeedLike = 0,
) -> ReplayTrace:
    """Build a seeded Poisson-arrival trace.

    Each stream is assigned a model round-robin from ``model_names``, opens
    at an exponential offset from the trace start, and emits its chunks
    with exponential inter-arrival gaps of mean ``1 / rate_hz`` seconds.
    Chunk samples are standard-normal draws from the same seeded generator,
    so two calls with equal arguments yield byte-identical traces.
    """
    if n_sessions < 1 or chunks_per_session < 1:
        raise ValueError("need at least one session and one chunk each")
    if chunk_len < 1 or n_channels < 1:
        raise ValueError("chunk_len and n_channels must be >= 1")
    if not np.isfinite(rate_hz) or rate_hz <= 0:
        raise ValueError(f"rate_hz must be positive, got {rate_hz!r}")
    rng = ensure_rng(seed)
    stream_models = [model_names[i % len(model_names)]
                     for i in range(n_sessions)]
    events: List[TraceEvent] = []
    for stream in range(n_sessions):
        t = 0.0
        for seq in range(chunks_per_session):
            t += float(rng.exponential(1.0 / rate_hz))
            data = rng.standard_normal((chunk_len, n_channels))
            events.append(TraceEvent(t=t, stream=stream, seq=seq, data=data))
    # stable sort: simultaneous arrivals keep stream order deterministic
    events.sort(key=lambda e: (e.t, e.stream, e.seq))
    seed_tag = int(seed) if isinstance(seed, (int, np.integer)) else -1
    return ReplayTrace(stream_models=stream_models, events=events,
                       rate_hz=float(rate_hz), seed=seed_tag)


def _primary_series(arrays: Dict[str, np.ndarray]) -> np.ndarray:
    """Pick the input series from a generator's array dict as ``(T, C)``."""
    for key in ("u", "x"):
        if key in arrays:
            arr = np.asarray(arrays[key], dtype=np.float64)
            break
    else:
        floats = [k for k, v in arrays.items()
                  if np.issubdtype(np.asarray(v).dtype, np.floating)]
        if not floats:
            raise ValueError(
                f"no float array to serve in generator output: {sorted(arrays)}"
            )
        arr = np.asarray(arrays[floats[0]], dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ValueError(f"expected a (T,) or (T, C) series, got {arr.shape}")
    return arr


def spec_trace(
    model_names: Sequence[str],
    spec,
    *,
    n_sessions: int,
    chunks_per_session: int,
    chunk_len: int,
    rate_hz: float = 200.0,
    seed: SeedLike = 0,
) -> ReplayTrace:
    """Build a Poisson-arrival trace fed by a registry dataset spec.

    Like :func:`poisson_trace`, but instead of white noise each stream
    replays a *series-kind* :class:`~repro.data.registry.GeneratorSpec`
    (e.g. ``narma``, ``mackey_glass``, ``eeg_pink``, ``am_fm``, or a
    ``drift`` wrapper) through the registry's streaming path: stream ``s``
    regenerates the spec with seed ``spec.seed + s`` and chunks it with
    ``generate_chunks`` — so payloads are bit-identical to eager
    generation, and the whole trace is reproducible from ``(spec, seed)``.
    Arrival times come from an independent ``seed``-derived stream, so the
    schedule and the signal content can be varied separately.

    The spec must yield at least ``chunks_per_session`` full chunks of
    ``chunk_len`` (i.e. cover ``chunks_per_session * chunk_len`` steps).
    """
    from repro.data.registry import GeneratorSpec, generate_chunks, \
        generator_kind

    if n_sessions < 1 or chunks_per_session < 1:
        raise ValueError("need at least one session and one chunk each")
    if chunk_len < 1:
        raise ValueError("chunk_len must be >= 1")
    if not np.isfinite(rate_hz) or rate_hz <= 0:
        raise ValueError(f"rate_hz must be positive, got {rate_hz!r}")
    if generator_kind(spec) != "series":
        raise ValueError(
            f"spec_trace needs a series-kind spec, got {spec.label()!r} "
            f"(kind {generator_kind(spec)!r})"
        )
    arrival_rng = ensure_rng(seed)
    stream_models = [model_names[i % len(model_names)]
                     for i in range(n_sessions)]
    events: List[TraceEvent] = []
    for stream in range(n_sessions):
        stream_spec = GeneratorSpec(
            name=spec.name, params=spec.params, seed=spec.seed + stream
        )
        chunks = generate_chunks(stream_spec, chunk_len)
        t = 0.0
        for seq in range(chunks_per_session):
            try:
                arrays = next(chunks)
            except StopIteration:
                raise ValueError(
                    f"spec {spec.label()!r} ran dry after {seq} chunks of "
                    f"{chunk_len}; raise n_steps to cover "
                    f"{chunks_per_session * chunk_len} steps"
                ) from None
            data = _primary_series(arrays)
            if data.shape[0] != chunk_len:
                raise ValueError(
                    f"spec {spec.label()!r} yielded a partial chunk "
                    f"({data.shape[0]} < {chunk_len}); raise n_steps to "
                    f"cover {chunks_per_session * chunk_len} steps"
                )
            t += float(arrival_rng.exponential(1.0 / rate_hz))
            events.append(TraceEvent(t=t, stream=stream, seq=seq, data=data))
    events.sort(key=lambda e: (e.t, e.stream, e.seq))
    seed_tag = int(seed) if isinstance(seed, (int, np.integer)) else -1
    return ReplayTrace(stream_models=stream_models, events=events,
                       rate_hz=float(rate_hz), seed=seed_tag)


@dataclass
class ReplayReport:
    """Throughput/latency summary of one replay run."""

    n_sessions: int
    n_chunks: int
    wall_s: float
    sessions_per_sec: float
    chunks_per_sec: float
    p50_ms: float
    p99_ms: float
    mean_occupancy: float
    sweeps: int
    rows_computed: int
    results: List[ChunkResult]
    deadline_chunks: int = 0    # chunks submitted with a nonzero budget
    violations: int = 0         # of those, how many finished late
    min_slack_ms: Optional[float] = None  # tightest margin to a deadline
    clock: str = "wall"         # "wall" | "virtual" | "async"

    def to_dict(self) -> dict:
        """JSON-ready summary (results themselves excluded)."""
        return {
            "n_sessions": self.n_sessions,
            "n_chunks": self.n_chunks,
            "wall_s": self.wall_s,
            "sessions_per_sec": self.sessions_per_sec,
            "chunks_per_sec": self.chunks_per_sec,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "mean_occupancy": self.mean_occupancy,
            "sweeps": self.sweeps,
            "rows_computed": self.rows_computed,
            "deadline_chunks": self.deadline_chunks,
            "violations": self.violations,
            "min_slack_ms": self.min_slack_ms,
            "clock": self.clock,
        }


def _build_report(trace: ReplayTrace, results: List[ChunkResult],
                  wall_s: float, stats: dict, clock: str) -> ReplayReport:
    """Summarize one finished replay (any driver) into a ReplayReport."""
    lat = np.array([r.latency_ms for r in results]) if results else np.zeros(1)
    slacks = [r.slack_ms for r in results if r.slack_ms is not None]
    return ReplayReport(
        n_sessions=trace.n_sessions,
        n_chunks=len(results),
        wall_s=wall_s,
        sessions_per_sec=trace.n_sessions / wall_s if wall_s > 0 else 0.0,
        chunks_per_sec=len(results) / wall_s if wall_s > 0 else 0.0,
        p50_ms=float(np.percentile(lat, 50)),
        p99_ms=float(np.percentile(lat, 99)),
        mean_occupancy=stats["mean_occupancy"],
        sweeps=stats["sweeps"],
        rows_computed=stats["rows_computed"],
        results=results,
        deadline_chunks=len(slacks),
        violations=sum(1 for s in slacks if s < 0.0),
        min_slack_ms=float(min(slacks)) if slacks else None,
        clock=clock,
    )


def replay(
    engine: ServeEngine,
    trace: ReplayTrace,
    *,
    time_scale: float = 0.0,
    clock=None,
    deadline_ms: Optional[float] = None,
    tick_on: str = "poll",
    fault_plan=None,
) -> ReplayReport:
    """Replay ``trace`` through ``engine`` and measure latency/throughput.

    ``fault_plan``, when given, is a :class:`~repro.faults.FaultPlan`
    installed for exactly the duration of the replay (and cleared after,
    even on error) — the chaos-replay entry point: the same trace replays
    once faulted and once clean, and on NumPy the per-session result
    streams must match bit-for-bit wherever the faulted run recovered.

    ``time_scale`` compresses the trace's arrival schedule: 1.0 replays at
    the recorded rate, 0.0 (the default) releases arrivals as fast as the
    engine can absorb them — arrival *order* is preserved either way, so
    outputs are identical and only the measured latencies change.  The
    engine is ticked between arrival batches and drained at the end; every
    session is closed before returning.

    ``clock`` is either a callable time source (wall replay against an
    injected clock) or the string ``"virtual"``, which installs a
    :class:`VirtualClock` on the engine and jumps it from event to event:
    no real time passes, deadline scheduling behaves exactly as on the
    wall, and latencies/violations are deterministic functions of the
    trace.  ``deadline_ms``, when given, is passed to every submit as the
    per-chunk budget override.

    ``tick_on`` models who drives the passive engine.  ``"poll"`` (the
    default) busy-ticks between arrivals — a dedicated ticker that hits
    every scheduler fire point as soon as it comes due.  ``"submit"``
    ticks only right after submitting, the way a caller-driven
    synchronous deployment behaves: a partial batch whose fire point
    falls between arrivals waits for the *next* arrival (or the final
    drain), which is exactly the failure mode the background tick loop
    of :class:`~repro.serve.async_engine.AsyncServeEngine` removes.
    """
    if time_scale < 0:
        raise ValueError(f"time_scale must be >= 0, got {time_scale!r}")
    if tick_on not in ("poll", "submit"):
        raise ValueError(
            f"tick_on must be 'poll' or 'submit', got {tick_on!r}"
        )
    if fault_plan is not None:
        faults.install_fault_plan(fault_plan)
        try:
            return replay(engine, trace, time_scale=time_scale, clock=clock,
                          deadline_ms=deadline_ms, tick_on=tick_on)
        finally:
            faults.clear_fault_plan()
    if clock == "virtual":
        return _replay_virtual(engine, trace, time_scale=time_scale,
                               deadline_ms=deadline_ms)
    now = clock if clock is not None else time.perf_counter
    session_ids: Dict[int, str] = {}
    t0 = now()
    i = 0
    events = trace.events
    while i < len(events):
        elapsed = now() - t0
        due = i
        while due < len(events) and events[due].t * time_scale <= elapsed:
            due += 1
        if due == i:
            # nothing due yet
            if tick_on == "poll":
                # dedicated ticker: may flush a deferred batch right at
                # its fire point
                engine.tick()
            elif clock is None:
                # caller-driven: nobody ticks until the next submit
                wait = events[i].t * time_scale - elapsed
                if wait > 0:
                    time.sleep(min(wait, 0.001))
            continue
        for event in events[i:due]:
            sid = session_ids.get(event.stream)
            if sid is None:
                sid = engine.open_session(trace.stream_models[event.stream])
                session_ids[event.stream] = sid
            engine.submit(sid, event.data, deadline_ms=deadline_ms)
        i = due
        engine.tick()
    engine.drain()
    wall_s = now() - t0
    results = engine.pop_results()
    for stream, sid in session_ids.items():
        engine.close_session(sid)
    return _build_report(trace, results, wall_s, engine.stats(), "wall")


def _replay_virtual(
    engine: ServeEngine,
    trace: ReplayTrace,
    *,
    time_scale: float,
    deadline_ms: Optional[float],
) -> ReplayReport:
    """Deterministic event-driven replay on a :class:`VirtualClock`.

    Time never idles: it jumps to the earlier of the next arrival and the
    next scheduled fire point (earliest deadline minus the slack margin),
    ticking at each stop.  A trace describing minutes of traffic replays
    in however long the sweeps themselves take — this is the CI smoke
    path for the deadline machinery.
    """
    vclock = VirtualClock()
    engine.set_clock(vclock)
    session_ids: Dict[int, str] = {}
    t0 = vclock()
    i = 0
    events = trace.events
    while i < len(events):
        arrival = t0 + events[i].t * time_scale
        fire = engine.next_deadline()
        if fire is not None:
            fire = fire - engine.margin_s
        if fire is not None and fire < arrival:
            # a deadline lands before the next arrival: jump there, fire
            vclock.set(fire)
            engine.tick()
            continue
        vclock.set(arrival)
        while i < len(events) and t0 + events[i].t * time_scale <= vclock():
            event = events[i]
            sid = session_ids.get(event.stream)
            if sid is None:
                sid = engine.open_session(trace.stream_models[event.stream])
                session_ids[event.stream] = sid
            engine.submit(sid, event.data, deadline_ms=deadline_ms)
            i += 1
        engine.tick()
    # all arrivals in: walk the remaining deadlines, then drain
    while True:
        fire = engine.next_deadline()
        if fire is None:
            break
        vclock.set(fire - engine.margin_s)
        engine.tick()
    engine.drain()
    wall_s = vclock() - t0
    results = engine.pop_results()
    for stream, sid in session_ids.items():
        engine.close_session(sid)
    return _build_report(trace, results, wall_s, engine.stats(), "virtual")


async def replay_async(
    async_engine,
    trace: ReplayTrace,
    *,
    time_scale: float = 1.0,
    deadline_ms: Optional[float] = None,
) -> ReplayReport:
    """Replay ``trace`` through an :class:`~repro.serve.async_engine.
    AsyncServeEngine` on the real clock.

    Arrivals become ``asyncio.sleep`` delays on the event loop and every
    chunk's completion is an awaited future — so the measured latencies
    include exactly what a caller of the async API would see: queueing,
    the background loop's deadline-driven wake-ups, and the fused sweeps
    on the executor thread.  The engine must already be started
    (``async with``).  Sessions are closed before returning.
    """
    if time_scale < 0:
        raise ValueError(f"time_scale must be >= 0, got {time_scale!r}")
    sessions: Dict[int, object] = {}
    futures = []
    t0 = time.perf_counter()
    for event in trace.events:
        delay = event.t * time_scale - (time.perf_counter() - t0)
        if delay > 0:
            await asyncio.sleep(delay)
        sess = sessions.get(event.stream)
        if sess is None:
            sess = await async_engine.open_session(
                trace.stream_models[event.stream])
            sessions[event.stream] = sess
        futures.append(await sess.submit(event.data,
                                         deadline_ms=deadline_ms))
    results = list(await asyncio.gather(*futures))
    wall_s = time.perf_counter() - t0
    for sess in sessions.values():
        await sess.close()
    return _build_report(trace, results, wall_s, async_engine.stats(),
                         "async")
