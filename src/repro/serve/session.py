"""Per-stream session state for the serving engine.

A session is one live input stream against one deployed model.  Between
chunks it holds exactly the resumable reservoir state of
:meth:`~repro.reservoir.modular.ModularDFR.run_streaming` — a batch-1
:class:`~repro.reservoir.modular.StreamingResult` carrying the state ring,
pre-activation ring and online DPRR accumulators — plus its own consumed
step count.  That is ``O(window * N_x)`` floats per stream, independent of
how long the stream has run: the memory contract that makes thousands of
concurrent streams cheap.

Sessions do no computation themselves.  The engine assembles the carries
of many sessions into one fused batch, runs the sweep, and hands each
session its slice back via :meth:`StreamSession.advance`.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.reservoir.modular import StreamingResult

__all__ = ["PendingChunk", "StreamSession"]


class PendingChunk:
    """One submitted input chunk waiting in a session's queue."""

    __slots__ = ("data", "arrival", "seq")

    def __init__(self, data: np.ndarray, arrival: float, seq: int):
        self.data = data          # (T, C) float array, already validated
        self.arrival = arrival    # engine-clock timestamp of submit()
        self.seq = seq            # per-session chunk sequence number

    @property
    def t_len(self) -> int:
        return self.data.shape[0]


class StreamSession:
    """State of one input stream between scheduler ticks.

    Attributes
    ----------
    session_id:
        Engine-unique identifier.
    model_name:
        The deployed model this stream is scored by.
    carry:
        Batch-1 :class:`StreamingResult` of the last processed chunk, or
        ``None`` before the first chunk.  Its ``n_steps`` is kept equal to
        :attr:`n_steps` so DPRR length-normalization scales by the *whole*
        stream length, not the last chunk's.
    n_steps:
        Total time steps consumed so far.
    pending:
        FIFO queue of :class:`PendingChunk`; the engine only ever takes the
        head (chunks of one stream must update the carry in order).
    """

    __slots__ = ("session_id", "model_name", "carry", "n_steps", "pending",
                 "next_seq", "closed")

    def __init__(self, session_id: str, model_name: str):
        self.session_id = session_id
        self.model_name = model_name
        self.carry: Optional[StreamingResult] = None
        self.n_steps = 0
        self.pending: deque = deque()
        self.next_seq = 0
        self.closed = False

    def enqueue(self, data: np.ndarray, arrival: float) -> PendingChunk:
        chunk = PendingChunk(data, arrival, self.next_seq)
        self.next_seq += 1
        self.pending.append(chunk)
        return chunk

    @property
    def head(self) -> Optional[PendingChunk]:
        return self.pending[0] if self.pending else None

    def advance(self, carry: StreamingResult, t_len: int) -> None:
        """Commit one processed chunk: new carry, head chunk retired."""
        self.pending.popleft()
        self.n_steps += int(t_len)
        self.carry = carry

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"StreamSession({self.session_id!r}, model={self.model_name!r}, "
            f"n_steps={self.n_steps}, pending={len(self.pending)})"
        )
