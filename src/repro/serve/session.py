"""Per-stream session state for the serving engine.

A session is one live input stream against one deployed model.  Between
chunks its resumable reservoir state — a batch-1
:class:`~repro.reservoir.modular.StreamingResult` carrying the state ring,
pre-activation ring and online DPRR accumulators — lives *backend-native*
in the engine's :class:`~repro.serve.carry.CarryStore`; the session itself
holds only host-side bookkeeping: the FIFO of pending chunks, sequence and
step counters, its deadline default, and the liveness timestamps that
drive idle eviction.  State per stream is still ``O(window * N_x)``
floats, independent of how long the stream has run.

Sessions do no computation.  The engine assembles many sessions' carries
into one fused batch, runs the sweep off-lock, and commits each session's
slice back via :meth:`StreamSession.advance`; while a session's head chunk
rides a sweep the session is marked ``in_flight`` so submits and closes
stay race-free without waiting on the compute.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

__all__ = ["PendingChunk", "StreamSession"]


class PendingChunk:
    """One submitted input chunk waiting in a session's queue."""

    __slots__ = ("data", "arrival", "seq", "deadline", "budget_ms")

    def __init__(self, data: np.ndarray, arrival: float, seq: int,
                 deadline: float, budget_ms: float):
        self.data = data          # (T, C) float array, already validated
        self.arrival = arrival    # engine-clock timestamp of submit()
        self.seq = seq            # per-session chunk sequence number
        self.deadline = deadline  # absolute engine-clock due time (seconds)
        self.budget_ms = budget_ms  # resolved budget; 0 = due immediately

    @property
    def t_len(self) -> int:
        return self.data.shape[0]

    @property
    def has_deadline(self) -> bool:
        """Whether this chunk takes part in slack/violation accounting."""
        return self.budget_ms > 0.0


class StreamSession:
    """Host-side state of one input stream between scheduler ticks.

    Attributes
    ----------
    session_id:
        Engine-unique identifier.
    model_name:
        The deployed model this stream is scored by.
    n_steps:
        Total time steps consumed so far (the carry's ``n_steps`` mirror).
    pending:
        FIFO queue of :class:`PendingChunk`; the engine only ever takes the
        head (chunks of one stream must update the carry in order).
    deadline_ms:
        Per-session default deadline budget, applied when a submit gives
        no explicit override.
    last_active:
        Engine-clock time of the last submit or commit — what the idle-TTL
        eviction measures against.
    in_flight:
        True while the head chunk rides a fused sweep (taken by a tick,
        not yet committed).
    """

    __slots__ = ("session_id", "model_name", "n_steps", "pending",
                 "next_seq", "closed", "deadline_ms", "last_active",
                 "in_flight")

    def __init__(self, session_id: str, model_name: str, *,
                 deadline_ms: float = 0.0, opened_at: float = 0.0):
        self.session_id = session_id
        self.model_name = model_name
        self.n_steps = 0
        self.pending: deque = deque()
        self.next_seq = 0
        self.closed = False
        self.deadline_ms = float(deadline_ms)
        self.last_active = float(opened_at)
        self.in_flight = False

    def enqueue(self, data: np.ndarray, arrival: float,
                budget_ms: float) -> PendingChunk:
        deadline = arrival + budget_ms / 1e3
        chunk = PendingChunk(data, arrival, self.next_seq, deadline,
                             budget_ms)
        self.next_seq += 1
        self.pending.append(chunk)
        self.last_active = arrival
        return chunk

    @property
    def head(self) -> Optional[PendingChunk]:
        return self.pending[0] if self.pending else None

    def advance(self, t_len: int, completed: float) -> PendingChunk:
        """Commit one processed chunk: head retired, counters advanced."""
        chunk = self.pending.popleft()
        self.n_steps += int(t_len)
        self.last_active = completed
        return chunk

    def drop_head(self, now: float) -> PendingChunk:
        """Discard the head chunk *without* consuming it (shed / failed).

        The reservoir never saw the chunk, so ``n_steps`` and the carry
        stay untouched — the stream simply has a gap, and the next chunk
        resumes from the state the dropped one found.
        """
        chunk = self.pending.popleft()
        self.last_active = now
        return chunk

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"StreamSession({self.session_id!r}, model={self.model_name!r}, "
            f"n_steps={self.n_steps}, pending={len(self.pending)}, "
            f"in_flight={self.in_flight})"
        )
