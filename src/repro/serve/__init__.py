"""Streaming inference: model persistence, sessions, continuous batching.

The serving layer turns a *trained* DFR pipeline into a deployable
artifact and an engine that scores many concurrent input streams through
the same fused array programs the training stack runs on:

* :mod:`repro.serve.model_store` — one versioned JSON document per model
  (extractor snapshot + ``(A, B)`` + ridge readout), exact round trip;
* :mod:`repro.serve.session` — per-stream host bookkeeping (chunk FIFO,
  deadlines, liveness) for one live input stream;
* :mod:`repro.serve.carry` — backend-native storage of each stream's
  resumable reservoir state, with JSON checkpoint/restore boundaries;
* :mod:`repro.serve.scheduler` — per-(pipeline, chunk-length) bucket
  earliest-deadline-first scheduling with slack-margin firing;
* :mod:`repro.serve.engine` — the continuous-batching scheduler packing
  waiting sessions onto the batch axis and heterogeneous same-pipeline
  models onto the candidate axis of one fused sweep, with idle-TTL
  eviction and session checkpoint/restore;
* :mod:`repro.serve.async_engine` — the asyncio front door: an always-on
  background tick loop, futures per submitted chunk;
* :mod:`repro.serve.replay` — seeded Poisson traffic replay with latency,
  deadline and occupancy accounting, on the wall clock, a deterministic
  :class:`~repro.serve.replay.VirtualClock`, or the async engine.

On the NumPy backend, batched serving is bit-identical to per-session
serial serving — the scheduler's knobs trade latency for throughput and
cannot change a score.
"""

from repro.serve.async_engine import AsyncServeEngine, AsyncServeSession
from repro.serve.carry import CarryStore, carry_from_doc, carry_to_doc
from repro.serve.engine import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT_MS,
    SERVE_MAX_BATCH_ENV,
    SERVE_MAX_PENDING_ENV,
    SERVE_MAX_WAIT_ENV,
    SESSION_FORMAT,
    SESSION_FORMAT_VERSION,
    Backpressure,
    ChunkResult,
    Overloaded,
    ServeEngine,
    TickReport,
    resolve_max_batch,
    resolve_max_pending,
    resolve_max_wait_ms,
)
from repro.serve.model_store import (
    MODEL_FORMAT,
    MODEL_FORMAT_VERSION,
    ServableModel,
    load_model,
    save_model,
)
from repro.serve.replay import (
    ReplayReport,
    ReplayTrace,
    TraceEvent,
    VirtualClock,
    poisson_trace,
    replay,
    replay_async,
    spec_trace,
)
from repro.serve.scheduler import (
    DEFAULT_DEADLINE_MS,
    SERVE_DEADLINE_ENV,
    SERVE_IDLE_TTL_ENV,
    DeadlineScheduler,
    resolve_deadline_ms,
    resolve_idle_ttl_ms,
)
from repro.serve.session import PendingChunk, StreamSession

__all__ = [
    "MODEL_FORMAT",
    "MODEL_FORMAT_VERSION",
    "SESSION_FORMAT",
    "SESSION_FORMAT_VERSION",
    "ServableModel",
    "save_model",
    "load_model",
    "PendingChunk",
    "StreamSession",
    "CarryStore",
    "carry_to_doc",
    "carry_from_doc",
    "DeadlineScheduler",
    "ServeEngine",
    "AsyncServeEngine",
    "AsyncServeSession",
    "ChunkResult",
    "TickReport",
    "Backpressure",
    "Overloaded",
    "SERVE_MAX_BATCH_ENV",
    "SERVE_MAX_WAIT_ENV",
    "SERVE_MAX_PENDING_ENV",
    "SERVE_DEADLINE_ENV",
    "SERVE_IDLE_TTL_ENV",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_WAIT_MS",
    "DEFAULT_DEADLINE_MS",
    "resolve_max_batch",
    "resolve_max_pending",
    "resolve_max_wait_ms",
    "resolve_deadline_ms",
    "resolve_idle_ttl_ms",
    "TraceEvent",
    "ReplayTrace",
    "poisson_trace",
    "spec_trace",
    "ReplayReport",
    "VirtualClock",
    "replay",
    "replay_async",
]
