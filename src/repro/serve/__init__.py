"""Streaming inference: model persistence, sessions, continuous batching.

The serving layer turns a *trained* DFR pipeline into a deployable
artifact and an engine that scores many concurrent input streams through
the same fused array programs the training stack runs on:

* :mod:`repro.serve.model_store` — one versioned JSON document per model
  (extractor snapshot + ``(A, B)`` + ridge readout), exact round trip;
* :mod:`repro.serve.session` — per-stream resumable reservoir state,
  ``O(window * N_x)`` floats per stream;
* :mod:`repro.serve.engine` — the continuous-batching scheduler packing
  waiting sessions onto the batch axis and heterogeneous same-pipeline
  models onto the candidate axis of one fused sweep;
* :mod:`repro.serve.replay` — seeded Poisson traffic replay with latency
  and occupancy accounting (the ``repro-bench serve`` harness).

On the NumPy backend, batched serving is bit-identical to per-session
serial serving — the scheduler's knobs trade latency for throughput and
cannot change a score.
"""

from repro.serve.engine import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT_MS,
    SERVE_MAX_BATCH_ENV,
    SERVE_MAX_WAIT_ENV,
    ChunkResult,
    ServeEngine,
    TickReport,
    resolve_max_batch,
    resolve_max_wait_ms,
)
from repro.serve.model_store import (
    MODEL_FORMAT,
    MODEL_FORMAT_VERSION,
    ServableModel,
    load_model,
    save_model,
)
from repro.serve.replay import (
    ReplayReport,
    ReplayTrace,
    TraceEvent,
    poisson_trace,
    replay,
    spec_trace,
)
from repro.serve.session import PendingChunk, StreamSession

__all__ = [
    "MODEL_FORMAT",
    "MODEL_FORMAT_VERSION",
    "ServableModel",
    "save_model",
    "load_model",
    "PendingChunk",
    "StreamSession",
    "ServeEngine",
    "ChunkResult",
    "TickReport",
    "SERVE_MAX_BATCH_ENV",
    "SERVE_MAX_WAIT_ENV",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_WAIT_MS",
    "resolve_max_batch",
    "resolve_max_wait_ms",
    "TraceEvent",
    "ReplayTrace",
    "poisson_trace",
    "spec_trace",
    "ReplayReport",
    "replay",
]
