"""Backend-native storage for per-session resumable reservoir state.

PR 7 kept every session's carry — the batch-1
:class:`~repro.reservoir.modular.StreamingResult` of its last processed
chunk — as host NumPy arrays, which forced the engine's tick to round-trip
device backends twice per sweep: results down to the host to slice the
per-session carries out, carries back up to the device to resume the next
sweep.  :class:`CarryStore` removes the round-trip: carries live in
whatever array type the engine's backend produced, keyed by the backend's
``(name, device, dtype)`` identity, and cross the seam only at two
declared boundaries:

* :meth:`to_host_doc` — JSON-ready snapshot for session checkpointing and
  idle eviction (float64 lists; CPython ``json`` round-trips finite
  doubles exactly, so NumPy carries restore *bit for bit* through the
  same convention as the :mod:`~repro.serve.model_store` envelope);
* :meth:`from_host_doc` — the reverse, re-materializing a snapshot as
  backend-native arrays via ``asarray`` (an input boundary, like a chunk
  upload).

Everything else — assembly into a fused batch, per-session slicing after
a sweep — happens device-side in the engine, and the
:attr:`~repro.backend.ArrayBackend.transfers` counters on the backend
seam assert that no undeclared host transfer sneaks back in.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.backend import ArrayBackend
from repro.reservoir.modular import StreamingResult

__all__ = ["CarryStore", "carry_to_doc", "carry_from_doc"]


def carry_to_doc(backend: ArrayBackend,
                 carry: Optional[StreamingResult]) -> Optional[dict]:
    """Snapshot a batch-1 carry as a JSON-ready dict (``None`` passes)."""
    if carry is None:
        return None
    if carry.dprr_sums is None:
        raise ValueError("carry has no DPRR accumulators; cannot snapshot")

    def host(a) -> list:
        return np.asarray(
            backend.to_numpy_boundary(a), dtype=np.float64
        )[0].tolist()

    return {
        "window_states": host(carry.window_states),
        "window_pre_activations": host(carry.window_pre_activations),
        "p_sum": host(carry.dprr_sums[0]),
        "s_sum": host(carry.dprr_sums[1]),
        "diverged": bool(np.asarray(carry.diverged)[0]),
        "n_steps": int(carry.n_steps),
    }


_CARRY_KEYS = {"window_states", "window_pre_activations", "p_sum", "s_sum",
               "diverged", "n_steps"}


def carry_from_doc(backend: ArrayBackend,
                   doc: Optional[dict]) -> Optional[StreamingResult]:
    """Rebuild a backend-native batch-1 carry from :func:`carry_to_doc`."""
    if doc is None:
        return None
    if not isinstance(doc, dict) or set(doc) != _CARRY_KEYS:
        raise ValueError(
            f"carry snapshot must have keys {sorted(_CARRY_KEYS)}, got "
            f"{sorted(doc) if isinstance(doc, dict) else type(doc).__name__}"
        )

    def native(value):
        return backend.asarray(np.asarray(value, dtype=np.float64)[None])

    return StreamingResult(
        window_states=native(doc["window_states"]),
        window_pre_activations=native(doc["window_pre_activations"]),
        dprr_sums=(native(doc["p_sum"]), native(doc["s_sum"])),
        diverged=np.array([bool(doc["diverged"])]),
        n_steps=int(doc["n_steps"]),
    )


class CarryStore:
    """Session-id -> backend-native carry, pinned to one backend identity.

    The store belongs to one engine and therefore to one backend; its
    ``key`` names the residency domain (``("torch", "cuda:0", "float32")``
    etc.) so diagnostics and tests can state *where* the carries live.
    ``get``/``put`` never convert arrays — whatever the sweep produced is
    what resumes the next sweep.
    """

    def __init__(self, backend: ArrayBackend):
        self.backend = backend
        self._carries: Dict[str, StreamingResult] = {}

    @property
    def key(self) -> tuple:
        """The residency domain: ``(backend name, device, dtype name)``."""
        return (self.backend.name, self.backend.device or "cpu",
                self.backend.dtype_name)

    def __len__(self) -> int:
        return len(self._carries)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._carries

    def get(self, session_id: str) -> Optional[StreamingResult]:
        return self._carries.get(session_id)

    def put(self, session_id: str, carry: StreamingResult) -> None:
        self._carries[session_id] = carry

    def pop(self, session_id: str) -> Optional[StreamingResult]:
        return self._carries.pop(session_id, None)

    def to_host_doc(self, session_id: str) -> Optional[dict]:
        """Checkpoint one session's carry (see :func:`carry_to_doc`)."""
        return carry_to_doc(self.backend, self._carries.get(session_id))

    def from_host_doc(self, session_id: str, doc: Optional[dict]) -> None:
        """Restore one session's carry (see :func:`carry_from_doc`)."""
        carry = carry_from_doc(self.backend, doc)
        if carry is not None:
            self._carries[session_id] = carry

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CarryStore(key={self.key!r}, sessions={len(self._carries)})"
