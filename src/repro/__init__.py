"""repro — differentiable delayed-feedback reservoir (DFR) computing.

A faithful, self-contained reproduction of

    Ikeda, Awano & Sato, "Fast Parameter Optimization of Delayed Feedback
    Reservoir with Backpropagation and Gradient Descent", DATE 2024 /
    ACM TECS (arXiv:2504.12363),

including every substrate the paper builds on: modular/digital/analog DFR
reservoirs, the dot-product reservoir representation (DPRR), analytic
backpropagation with truncation, the SGD training protocol, the
grid-search baseline, ridge readouts, the 12-dataset benchmark suite
(synthetic generators), storage accounting, and hardware-oriented
fixed-point utilities.

Quickstart
----------
>>> from repro import DFRClassifier, load_dataset
>>> data = load_dataset("JPVOW", seed=0)
>>> clf = DFRClassifier(seed=0).fit(data.u_train, data.y_train)
>>> print(f"A={clf.A_:.4f} B={clf.B_:.4f} beta={clf.beta_:g} "
...       f"acc={clf.score(data.u_test, data.y_test):.3f}")
"""

from repro.core import (
    BackpropEngine,
    BackpropTrainer,
    DFRClassifier,
    DFRFeatureExtractor,
    GridSearch,
    RecursiveGridSearch,
    TrainerConfig,
    TrainingResult,
    evaluate_fixed_params,
)
from repro.data import (
    LoadedDataset,
    dataset_keys,
    get_spec,
    load_dataset,
    make_toy_dataset,
)
from repro.memory import naive_storage, truncated_storage
from repro.readout import (
    RidgeModel,
    SoftmaxReadout,
    accuracy_score,
    fit_ridge,
    select_beta,
)
from repro.backend import (
    ArrayBackend,
    BackendUnavailableError,
    available_backends,
    resolve_backend,
)
from repro.representation import DPRR, LastState, MeanState, SubsampledStates
from repro.reservoir import (
    AnalogMGDFR,
    DigitalMGDFR,
    InputMask,
    MackeyGlass,
    ModularDFR,
    Tanh,
    get_nonlinearity,
)

__version__ = "1.0.0"

__all__ = [
    "BackpropEngine",
    "BackpropTrainer",
    "DFRClassifier",
    "DFRFeatureExtractor",
    "GridSearch",
    "RecursiveGridSearch",
    "TrainerConfig",
    "TrainingResult",
    "evaluate_fixed_params",
    "LoadedDataset",
    "dataset_keys",
    "get_spec",
    "load_dataset",
    "make_toy_dataset",
    "naive_storage",
    "truncated_storage",
    "RidgeModel",
    "SoftmaxReadout",
    "accuracy_score",
    "fit_ridge",
    "select_beta",
    "DPRR",
    "LastState",
    "MeanState",
    "SubsampledStates",
    "AnalogMGDFR",
    "DigitalMGDFR",
    "InputMask",
    "MackeyGlass",
    "ModularDFR",
    "Tanh",
    "get_nonlinearity",
    "ArrayBackend",
    "BackendUnavailableError",
    "available_backends",
    "resolve_backend",
    "__version__",
]
