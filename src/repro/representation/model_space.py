"""Reservoir model-space representation (Chen et al. 2013; Bianchi et al. 2020).

The representation baseline the DPRR was originally compared against
(paper Sec. 2.2, refs [4, 6]): instead of aggregating reservoir states
directly, fit — per sample — a small ridge readout that predicts the next
reservoir state (or next input) from the current state, and use the
flattened readout coefficients as the fixed-length representation.  Samples
whose dynamics differ get different one-step models, hence separable
coefficient vectors.

Two flavors are provided, matching the literature:

* ``target="states"`` — *reservoir model space*: predict ``x(k+1)`` from
  ``x(k)``; features per sample: ``N_x * (N_x + 1)`` (coefficients +
  intercept), the same width as the DPRR at equal ``N_x``.
* ``target="input"`` — *output model space*: predict ``u(k+1)`` from
  ``x(k)``; features per sample: ``C * (N_x + 1)``.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.reservoir.modular import ReservoirTrace

__all__ = ["ModelSpace"]


class ModelSpace:
    """Per-sample one-step-prediction model coefficients as features.

    Parameters
    ----------
    ridge:
        Regularization of the per-sample one-step model (these fits see
        ``T`` rows of ``N_x`` features, so a small positive value is
        required for stability).
    target:
        ``"states"`` (reservoir model space) or ``"input"`` (output model
        space; requires passing the input batch to :meth:`features`).
    """

    def __init__(self, ridge: float = 1e-4, target: str = "states"):
        if ridge <= 0.0:
            raise ValueError(f"ridge must be positive, got {ridge}")
        if target not in ("states", "input"):
            raise ValueError(f"target must be 'states' or 'input', got {target!r}")
        self.ridge = float(ridge)
        self.target = target

    def n_features(self, n_nodes: int, n_channels: int = None) -> int:
        """Feature width for a given reservoir size."""
        if self.target == "states":
            return n_nodes * (n_nodes + 1)
        if n_channels is None:
            raise ValueError("n_channels is required for target='input'")
        return n_channels * (n_nodes + 1)

    def features(self, source, u: np.ndarray = None) -> np.ndarray:
        """Compute model-space features ``(N, n_features)``.

        Parameters
        ----------
        source:
            A :class:`ReservoirTrace` or raw ``(N, T+1, N_x)`` state array.
        u:
            The input batch ``(N, T, C)``; required for ``target="input"``.
        """
        states = source.states if isinstance(source, ReservoirTrace) else np.asarray(source)
        if states.ndim != 3:
            raise ValueError(f"states must be (N, T+1, N_x), got {states.shape}")
        n, t_plus_1, nx = states.shape
        if t_plus_1 < 3:
            raise ValueError("need at least two time steps to fit a one-step model")
        if self.target == "input":
            if u is None:
                raise ValueError("target='input' requires the input batch u")
            u = np.asarray(u, dtype=np.float64)
            if u.shape[:2] != (n, t_plus_1 - 1):
                raise ValueError(
                    f"u must be (N, T, C) matching the trace, got {u.shape}"
                )
        out = []
        eye = np.eye(nx + 1)
        for i in range(n):
            x_now = states[i, 1:-1, :]         # x(1) .. x(T-1)
            design = np.concatenate(
                [x_now, np.ones((x_now.shape[0], 1))], axis=1
            )
            if self.target == "states":
                target = states[i, 2:, :]      # x(2) .. x(T)
            else:
                target = u[i, 1:, :]           # u(2) .. u(T)
            lhs = design.T @ design + self.ridge * design.shape[0] * eye
            rhs = design.T @ target
            try:
                cho = scipy.linalg.cho_factor(lhs, check_finite=False)
                coef = scipy.linalg.cho_solve(cho, rhs, check_finite=False)
            except scipy.linalg.LinAlgError:
                coef = np.linalg.lstsq(lhs, rhs, rcond=None)[0]
            out.append(coef.T.ravel())
        return np.asarray(out)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ModelSpace(ridge={self.ridge}, target={self.target!r})"
