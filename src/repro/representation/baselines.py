"""Baseline reservoir representations (paper Sec. 2.2 context).

The paper motivates the DPRR by comparing against simpler fixed-length
representations from the literature [3-6, 13].  These baselines let users
(and the benches) quantify how much of the accuracy comes from the DPRR
itself rather than from the reservoir:

* :class:`LastState` — the final reservoir state ``x(T)`` (the classic
  delay-reservoir readout for sequence classification);
* :class:`MeanState` — the time average of the states (the "reservoir state
  itself" term of the DPRR, alone);
* :class:`SubsampledStates` — ``n_points`` states sampled evenly over time,
  concatenated (output-space representation).

All share the :meth:`features` interface of
:class:`~repro.representation.dprr.DPRR` so they can be swapped into the
pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.reservoir.modular import ReservoirTrace

__all__ = ["LastState", "MeanState", "SubsampledStates"]


def _states_of(source) -> np.ndarray:
    states = source.states if isinstance(source, ReservoirTrace) else np.asarray(source)
    if states.ndim != 3:
        raise ValueError(
            f"states must be (N, T+1, N_x) including the initial row, got {states.shape}"
        )
    if states.shape[1] < 2:
        raise ValueError("need at least one time step")
    return states


class LastState:
    """The final reservoir state ``x(T)`` as the representation."""

    @staticmethod
    def n_features(n_nodes: int) -> int:
        return n_nodes

    def features(self, source) -> np.ndarray:
        states = _states_of(source)
        return states[:, -1, :].copy()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "LastState()"


class MeanState:
    """The time-averaged reservoir state as the representation."""

    @staticmethod
    def n_features(n_nodes: int) -> int:
        return n_nodes

    def features(self, source) -> np.ndarray:
        states = _states_of(source)
        return states[:, 1:, :].mean(axis=1)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "MeanState()"


class SubsampledStates:
    """``n_points`` reservoir states sampled evenly over time, concatenated."""

    def __init__(self, n_points: int = 4):
        if n_points < 1:
            raise ValueError(f"n_points must be >= 1, got {n_points}")
        self.n_points = int(n_points)

    def n_features(self, n_nodes: int) -> int:
        return self.n_points * n_nodes

    def features(self, source) -> np.ndarray:
        states = _states_of(source)
        n, t_plus_1, nx = states.shape
        t_len = t_plus_1 - 1
        # evenly spaced indices in 1..T, always including the final state
        idx = np.linspace(1, t_len, num=min(self.n_points, t_len)).round().astype(int)
        picked = states[:, idx, :]
        feats = picked.reshape(n, -1)
        if idx.size < self.n_points:
            # pad short series by repeating the final state so the feature
            # width is independent of T
            pad = np.tile(states[:, -1, :], (1, self.n_points - idx.size))
            feats = np.concatenate([feats, pad], axis=1)
        return feats

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SubsampledStates(n_points={self.n_points})"
