"""Fixed-length reservoir representations (DPRR and baselines)."""

from repro.representation.baselines import LastState, MeanState, SubsampledStates
from repro.representation.dprr import DPRR
from repro.representation.model_space import ModelSpace

__all__ = ["DPRR", "ModelSpace", "LastState", "MeanState", "SubsampledStates"]
