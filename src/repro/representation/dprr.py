"""Dot-Product Reservoir Representation (DPRR, paper Sec. 2.2).

Classification needs one fixed-length feature vector per (variable-length)
series.  The DPRR builds it from lag-1 dot products of virtual-node
trajectories plus the plain time sums (paper Eqs. 10–11, 18–19):

.. math::

    r_{(i-1)N_x + j} = \\sum_{k=1}^{T} x(k)_i\\, x(k-1)_j, \\qquad
    r_{N_x^2 + i}    = \\sum_{k=1}^{T} x(k)_i,

giving :math:`N_r = N_x (N_x + 1)` features, i.e.
:math:`r = \\mathrm{vec}\\bigl(\\sum_k x(k)\\,[x(k-1), 1]^T\\bigr)`.

Normalization
-------------
The default (``normalize=None``) keeps the literal paper sums — the SGD
protocol of Sec. 4 (learning rate 1, 25 epochs) is tuned for exactly this
scale, and experiments with a ``1/T`` normalization destabilized training
on long-series datasets.  ``normalize="length"`` divides by ``T``; the
constant is carried through the analytic backward pass, so gradients are
exact either way.

The contraction is a single ``einsum`` plus a sum, so :meth:`DPRR.features`
routes through an :class:`~repro.backend.ArrayBackend` — inferred from the
source arrays by default, so a device-resident reservoir trace stays on its
device all the way to the feature matrix.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.backend import infer_backend, resolve_backend
from repro.reservoir.modular import ReservoirTrace, StreamingResult

__all__ = ["DPRR"]


class DPRR:
    """Dot-product reservoir representation extractor.

    Parameters
    ----------
    normalize:
        ``None`` (default) keeps the literal paper sums;
        ``"length"`` divides them by the series length ``T``.

    Examples
    --------
    >>> dprr = DPRR()
    >>> dprr.n_features(n_nodes=30)
    930
    """

    def __init__(self, normalize: Optional[str] = None):
        if normalize not in (None, "length"):
            raise ValueError(f"normalize must be None or 'length', got {normalize!r}")
        self.normalize = normalize

    @staticmethod
    def n_features(n_nodes: int) -> int:
        """Feature count ``N_r = N_x (N_x + 1)``."""
        return n_nodes * (n_nodes + 1)

    def scale(self, n_steps: int) -> float:
        """The constant multiplying the raw sums (1 or ``1/T``)."""
        return 1.0 / n_steps if self.normalize == "length" else 1.0

    def features(
        self, source: Union[ReservoirTrace, StreamingResult, np.ndarray],
        *, backend=None,
    ) -> np.ndarray:
        """Compute DPRR features ``(N, N_x (N_x + 1))``.

        Candidate-stacked sources (a vector-``(A, B)`` reservoir run, whose
        arrays carry a leading candidate axis) yield ``(K, N, N_x (N_x+1))``
        — K feature matrices from one fused contraction.

        Parameters
        ----------
        source:
            A :class:`ReservoirTrace` (or a raw ``(N, T+1, N_x)`` /
            ``(K, N, T+1, N_x)`` state array including the zero initial
            row), or a :class:`StreamingResult` whose online accumulators
            are reused directly.
        backend:
            :class:`~repro.backend.ArrayBackend` running the contraction;
            ``None`` infers it from the source arrays, so a device-resident
            trace yields device-resident features with no extra threading.
        """
        if isinstance(source, StreamingResult):
            if source.dprr_sums is None:
                raise ValueError(
                    "StreamingResult carries no DPRR accumulators (it was sliced "
                    "from a full trace); pass the trace instead"
                )
            p_acc, s_acc = source.dprr_sums
            xb = infer_backend(p_acc) if backend is None else resolve_backend(backend)
            p_flat = p_acc.reshape(tuple(p_acc.shape[:-2]) + (-1,))
            raw = xb.concatenate([p_flat, s_acc], axis=-1)
            return raw * self.scale(source.n_steps)

        states = source.states if isinstance(source, ReservoirTrace) else source
        xb = infer_backend(states) if backend is None else resolve_backend(backend)
        states = xb.asarray(states)
        if states.ndim not in (3, 4):
            raise ValueError(
                f"states must be (N, T+1, N_x) including the initial row — or "
                f"(K, N, T+1, N_x) for a candidate-stacked trace — got "
                f"{states.shape}"
            )
        t_len = states.shape[-2] - 1
        if t_len < 1:
            raise ValueError("need at least one time step")
        x_k = states[..., 1:, :]   # x(1) .. x(T)
        x_prev = states[..., :-1, :]  # x(0) .. x(T-1)
        # the ellipsis covers the sample axis — and, for a stacked trace,
        # the candidate axis in front of it — in one contraction
        p_mat = xb.einsum("...ti,...tj->...ij", x_k, x_prev)
        s_vec = xb.sum(x_k, axis=-2)
        p_flat = p_mat.reshape(tuple(p_mat.shape[:-2]) + (-1,))
        raw = xb.concatenate([p_flat, s_vec], axis=-1)
        return raw * self.scale(t_len)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"DPRR(normalize={self.normalize!r})"
