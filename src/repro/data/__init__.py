"""Datasets: paper benchmark metadata, synthetic generators, preprocessing."""

from repro.data.loaders import LoadedDataset, load_dataset, make_toy_dataset
from repro.data.metadata import (
    DATASETS,
    N_X_PAPER,
    PAPER_TABLE1,
    PAPER_TABLE2,
    DatasetSpec,
    dataset_keys,
    get_spec,
)
from repro.data.npz_io import load_npz_dataset, save_npz_dataset
from repro.data.regression import mackey_glass_series, narma, narma10
from repro.data.registry import (
    GeneratorSpec,
    concat_chunks,
    dataset_from_spec,
    generate,
    generate_chunks,
    generator_kind,
    get_generator,
    make_spec,
    register_generator,
    registered_generators,
    spec_for_dataset,
)
import repro.data.generators  # noqa: F401  (registers the series families)
from repro.data.preprocessing import (
    ChannelStandardizer,
    pad_or_truncate,
    stratified_split,
)

__all__ = [
    "LoadedDataset",
    "load_dataset",
    "make_toy_dataset",
    "DATASETS",
    "N_X_PAPER",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "DatasetSpec",
    "dataset_keys",
    "get_spec",
    "load_npz_dataset",
    "save_npz_dataset",
    "mackey_glass_series",
    "narma",
    "narma10",
    "GeneratorSpec",
    "concat_chunks",
    "dataset_from_spec",
    "generate",
    "generate_chunks",
    "generator_kind",
    "get_generator",
    "make_spec",
    "register_generator",
    "registered_generators",
    "spec_for_dataset",
    "ChannelStandardizer",
    "pad_or_truncate",
    "stratified_split",
]
