"""Datasets: paper benchmark metadata, synthetic generators, preprocessing."""

from repro.data.loaders import LoadedDataset, load_dataset, make_toy_dataset
from repro.data.metadata import (
    DATASETS,
    N_X_PAPER,
    PAPER_TABLE1,
    PAPER_TABLE2,
    DatasetSpec,
    dataset_keys,
    get_spec,
)
from repro.data.npz_io import load_npz_dataset, save_npz_dataset
from repro.data.regression import mackey_glass_series, narma10
from repro.data.preprocessing import (
    ChannelStandardizer,
    pad_or_truncate,
    stratified_split,
)

__all__ = [
    "LoadedDataset",
    "load_dataset",
    "make_toy_dataset",
    "DATASETS",
    "N_X_PAPER",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "DatasetSpec",
    "dataset_keys",
    "get_spec",
    "load_npz_dataset",
    "save_npz_dataset",
    "mackey_glass_series",
    "narma10",
    "ChannelStandardizer",
    "pad_or_truncate",
    "stratified_split",
]
