"""Import/export in the npz format of the Bianchi et al. benchmark.

The paper evaluates on "the same datasets (npz files) as in [4]" — the
multivariate time-series classification suite of Bianchi et al., whose npz
layout is::

    X    float (N_train, T, C)   training series (zero-padded to max T)
    Y    int   (N_train, 1)      training labels (may be 1-based)
    Xte  float (N_test, T, C)    test series
    Yte  int   (N_test, 1)       test labels

This environment has no network access, so the reproduction ships synthetic
generators — but users who *do* have the original files can drop them in and
run every harness on real data through :func:`load_npz_dataset`.
:func:`save_npz_dataset` writes the same layout (round-trip tested), which
also lets the synthetic sets be exported for use by the authors' original
code.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.data.loaders import LoadedDataset
from repro.data.metadata import DatasetSpec
from repro.utils.validation import as_batch, ensure_1d_labels

__all__ = ["load_npz_dataset", "save_npz_dataset"]


def _normalize_labels(raw: np.ndarray) -> np.ndarray:
    """Flatten, cast, and shift labels to the 0-based contiguous convention."""
    labels = np.asarray(raw)
    labels = labels.reshape(labels.shape[0], -1)[:, 0]
    labels = ensure_1d_labels(np.rint(labels).astype(np.int64))
    return labels


def load_npz_dataset(path: str, *, key: Optional[str] = None) -> LoadedDataset:
    """Load a Bianchi-format npz file as a :class:`LoadedDataset`.

    Labels are shifted to 0-based if the file uses 1-based classes (both
    conventions exist in the wild).  The returned spec records the actual
    array dimensions; generator knobs are set to NaN to make clear the data
    is real, not synthetic.
    """
    with np.load(path, allow_pickle=False) as archive:
        missing = {"X", "Y", "Xte", "Yte"} - set(archive.files)
        if missing:
            raise ValueError(
                f"{path} is not a Bianchi-format dataset; missing keys: "
                f"{sorted(missing)}"
            )
        u_train = as_batch(archive["X"], name="X")
        u_test = as_batch(archive["Xte"], name="Xte")
        y_train = _normalize_labels(archive["Y"])
        y_test = _normalize_labels(archive["Yte"])

    if u_train.shape[1:] != u_test.shape[1:]:
        raise ValueError(
            f"train {u_train.shape} and test {u_test.shape} disagree on (T, C)"
        )
    if y_train.shape[0] != u_train.shape[0] or y_test.shape[0] != u_test.shape[0]:
        raise ValueError("label counts do not match series counts")

    shift = min(y_train.min(), y_test.min())
    if shift > 0:  # 1-based labels
        y_train = y_train - shift
        y_test = y_test - shift
    n_classes = int(max(y_train.max(), y_test.max())) + 1

    name = key or os.path.splitext(os.path.basename(path))[0].upper()
    spec = DatasetSpec(
        key=name,
        full_name=f"npz file {os.path.basename(path)}",
        n_channels=u_train.shape[2],
        length=u_train.shape[1],
        n_classes=n_classes,
        train_paper=u_train.shape[0],
        test_paper=u_test.shape[0],
        train_bench=u_train.shape[0],
        test_bench=u_test.shape[0],
        family="npz",
        noise=float("nan"),
        separation=float("nan"),
    )
    return LoadedDataset(
        key=name, u_train=u_train, y_train=y_train,
        u_test=u_test, y_test=y_test, spec=spec,
    )


def save_npz_dataset(path: str, data: LoadedDataset, *, one_based: bool = False) -> None:
    """Write a :class:`LoadedDataset` in the Bianchi npz layout.

    ``one_based=True`` writes 1-based label columns (the convention of some
    of the original files).
    """
    offset = 1 if one_based else 0
    np.savez(
        path,
        X=data.u_train,
        Y=(data.y_train + offset)[:, np.newaxis],
        Xte=data.u_test,
        Yte=(data.y_test + offset)[:, np.newaxis],
    )
