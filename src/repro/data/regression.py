"""Classic reservoir-computing regression benchmarks.

The DFR literature the paper builds on (Appeltant et al. 2011, Soriano et
al. 2014) validates reservoirs on one-step-ahead regression tasks before
classification.  Two standards are provided:

* :func:`narma10` — the tenth-order nonlinear autoregressive moving-average
  system, the de-facto memory-plus-nonlinearity stress test;
* :func:`mackey_glass_series` — the chaotic Mackey–Glass time series
  (``tau > 16.8``), the classic chaotic-prediction benchmark (and the same
  equation the DFR's nonlinear element is modeled after).

Both return float64 arrays; see ``examples/narma_prediction.py`` for the
standard evaluation loop.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["narma", "narma10", "mackey_glass_series"]


def narma(
    n_steps: int, *, order: int = 10, seed: SeedLike = None,
    washout: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate an order-``N`` NARMA input/target pair.

    .. math::

        y_{t+1} = 0.3 y_t + 0.05 y_t \\sum_{i=0}^{N-1} y_{t-i}
                  + 1.5 u_{t-N+1} u_t + 0.1,

    with ``u_t ~ U[0, 0.5]``.  ``order=10`` is the classic NARMA-10 (see
    :func:`narma10`); larger orders lengthen the memory the reservoir must
    hold.  The first ``washout`` steps (transient from the zero initial
    condition; default ``max(50, 5 * order)``) are discarded from both
    arrays.

    Returns
    -------
    (u, y):
        Input and target, each of shape ``(n_steps,)``.
    """
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if washout is None:
        washout = max(50, 5 * order)
    if washout < order:
        raise ValueError(
            f"washout must cover the order of the system (>= {order})"
        )
    rng = ensure_rng(seed)
    total = n_steps + washout
    u = rng.uniform(0.0, 0.5, size=total)
    y = np.zeros(total)
    for t in range(order - 1, total - 1):
        window_sum = y[t - order + 1: t + 1].sum()
        y[t + 1] = (
            0.3 * y[t] + 0.05 * y[t] * window_sum
            + 1.5 * u[t - order + 1] * u[t] + 0.1
        )
        # the textbook recursion can diverge for unlucky draws; the standard
        # guard is to saturate (divergence never occurs for u in [0, 0.5])
        if not np.isfinite(y[t + 1]):  # pragma: no cover - defensive
            y[t + 1] = 0.0
    return u[washout:], y[washout:]


def narma10(
    n_steps: int, *, seed: SeedLike = None, washout: int = 50
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a NARMA-10 input/target pair (``narma(order=10)``).

    Kept as the named classic; bit-identical to the historical
    implementation (pinned in ``tests/test_regression_data.py``).
    """
    return narma(n_steps, order=10, seed=seed, washout=washout)


def mackey_glass_series(
    n_steps: int,
    *,
    tau: float = 17.0,
    beta: float = 0.2,
    gamma: float = 0.1,
    p: float = 10.0,
    dt: float = 1.0,
    substeps: int = 10,
    seed: SeedLike = None,
    washout: int = 500,
) -> np.ndarray:
    """Integrate the Mackey–Glass delay differential equation.

    .. math::

        \\dot{x}(t) = \\beta \\frac{x(t-\\tau)}{1 + x(t-\\tau)^p}
                      - \\gamma x(t)

    Integrated with RK4-free fixed-step Euler at ``dt / substeps``
    resolution (standard for this benchmark), sampled every ``dt``, with a
    randomized initial history around the fixed point.  ``tau = 17`` gives
    the mildly chaotic regime used throughout the RC literature.

    Returns
    -------
    ndarray of shape ``(n_steps,)``.
    """
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    if tau <= 0 or dt <= 0 or substeps < 1:
        raise ValueError("tau, dt must be positive and substeps >= 1")
    rng = ensure_rng(seed)
    h = dt / substeps
    delay_samples = max(1, int(round(tau / h)))
    history = 1.2 + 0.1 * rng.standard_normal(delay_samples)
    total_samples = (n_steps + washout) * substeps
    buf = np.concatenate([history, np.zeros(total_samples)])
    for i in range(total_samples):
        x_now = buf[delay_samples + i - 1] if i > 0 else history[-1]
        x_delayed = buf[i]
        drive = beta * x_delayed / (1.0 + x_delayed**p) - gamma * x_now
        buf[delay_samples + i] = x_now + h * drive
    sampled = buf[delay_samples:][::substeps][: n_steps + washout]
    return sampled[washout:]
