"""Dataset loading: synthetic benchmark sets + custom toy problems."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.metadata import DatasetSpec, get_spec
from repro.data.synthetic import generate_family
from repro.utils.rng import SeedLike

__all__ = ["LoadedDataset", "load_dataset", "make_toy_dataset"]


@dataclass
class LoadedDataset:
    """A train/test split plus its originating spec."""

    key: str
    u_train: np.ndarray
    y_train: np.ndarray
    u_test: np.ndarray
    y_test: np.ndarray
    spec: DatasetSpec

    @property
    def n_classes(self) -> int:
        return self.spec.n_classes

    @property
    def length(self) -> int:
        return self.spec.length

    @property
    def n_channels(self) -> int:
        return self.spec.n_channels

    def summary(self) -> str:
        """One-line description for logs and bench output."""
        return (
            f"{self.key}: train={self.u_train.shape[0]} test={self.u_test.shape[0]} "
            f"T={self.length} C={self.n_channels} classes={self.n_classes}"
        )


def load_dataset(
    key: str,
    *,
    size_profile: str = "bench",
    n_train: Optional[int] = None,
    n_test: Optional[int] = None,
    seed: SeedLike = 0,
) -> LoadedDataset:
    """Load one of the paper's 12 benchmark datasets (synthetic generator).

    Parameters
    ----------
    key:
        Dataset key as used in the paper's tables (e.g. ``"ARAB"``); see
        :func:`repro.data.metadata.dataset_keys`.
    size_profile:
        ``"bench"`` (scaled-down counts, default) or ``"paper"`` (the
        original benchmark sizes).
    n_train, n_test:
        Explicit sample counts overriding the profile.
    seed:
        Base seed; the same seed always reproduces the same dataset.
    """
    spec = get_spec(key)
    default_train, default_test = spec.sizes(size_profile)
    n_train = default_train if n_train is None else int(n_train)
    n_test = default_test if n_test is None else int(n_test)
    if seed is None or isinstance(seed, np.random.Generator):
        raise TypeError(
            "load_dataset requires an integer seed so datasets are reproducible"
        )
    u_train, y_train, u_test, y_test = generate_family(
        spec, n_train, n_test, seed=int(seed)
    )
    return LoadedDataset(
        key=spec.key,
        u_train=u_train,
        y_train=y_train,
        u_test=u_test,
        y_test=y_test,
        spec=spec,
    )


def make_toy_dataset(
    *,
    n_classes: int = 3,
    n_channels: int = 2,
    length: int = 40,
    n_train: int = 60,
    n_test: int = 60,
    family: str = "harmonic",
    noise: float = 0.3,
    separation: float = 1.0,
    seed: int = 0,
) -> LoadedDataset:
    """Build a small custom classification problem (tests, examples, docs).

    Same generator machinery as the benchmark sets, with every structural
    parameter exposed.
    """
    spec = DatasetSpec(
        key=f"TOY-{family}",
        full_name=f"toy {family} problem",
        n_channels=n_channels,
        length=length,
        n_classes=n_classes,
        train_paper=n_train,
        test_paper=n_test,
        train_bench=n_train,
        test_bench=n_test,
        family=family,
        noise=noise,
        separation=separation,
    )
    u_train, y_train, u_test, y_test = generate_family(
        spec, n_train, n_test, seed=seed
    )
    return LoadedDataset(
        key=spec.key,
        u_train=u_train,
        y_train=y_train,
        u_test=u_test,
        y_test=y_test,
        spec=spec,
    )
