"""Synthetic multivariate time-series generators.

Stand-ins for the npz benchmark datasets of Bianchi et al. (unavailable
offline; see DESIGN.md Sec. 4 for the substitution rationale).  Each
*family* produces class-conditional temporal structure of a different
character, matched to the domain of the dataset it replaces:

``harmonic``
    Sums of sinusoids with class-specific frequency content and random
    per-sample phases (speech-like: ARAB, JPVOW; periodic gait: WALK).
    Random phases force the classifier to use temporal structure rather
    than pointwise values.
``motion``
    Smooth random prototype trajectories per class, observed through random
    monotone time warps and amplitude jitter (pen strokes, MoCap, gestures:
    CHAR, CMU, KICK, LIB, UWAV, AUS).
``beat``
    Quasi-periodic pulse trains whose period, width and pulse morphology
    differ per class (ECG).
``regime``
    Piecewise-constant process levels with transition transients; classes
    differ in the level program (Wafer).
``burst``
    Smoothed count-like channels with class-specific burst windows
    (NetFlow).

All generators share two difficulty knobs: ``separation`` scales the
between-class structural differences and ``noise`` the additive observation
noise.  Class prototypes are drawn from a dedicated RNG stream so that the
class structure is identical across train/test and across sample counts.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict

import numpy as np

from repro.utils.rng import ensure_rng, spawn_rng

__all__ = ["generate_family", "family_prototypes", "FAMILIES",
           "class_counts"]


def class_counts(n_samples: int, n_classes: int) -> np.ndarray:
    """Distribute ``n_samples`` over ``n_classes`` as evenly as possible."""
    if n_samples < n_classes:
        raise ValueError(
            f"need at least one sample per class: {n_samples} < {n_classes}"
        )
    counts = np.full(n_classes, n_samples // n_classes)
    counts[: n_samples % n_classes] += 1
    return counts


def _smooth(x: np.ndarray, window: int) -> np.ndarray:
    """Moving-average smoothing along the first axis."""
    if window <= 1:
        return x
    kernel = np.ones(window) / window
    return np.apply_along_axis(
        lambda col: np.convolve(col, kernel, mode="same"), 0, x
    )


# --------------------------------------------------------------------- #
# harmonic family
# --------------------------------------------------------------------- #

def _harmonic_prototypes(class_rng, n_classes, n_channels, separation):
    """Class-specific frequencies/amplitudes for a bank of sinusoids."""
    n_harmonics = 3
    base = class_rng.uniform(2.0, 12.0, size=(n_classes, n_harmonics, n_channels))
    # separation spreads the per-class frequency offsets
    offsets = class_rng.normal(scale=2.0 * separation,
                               size=(n_classes, n_harmonics, n_channels))
    freqs = np.abs(base + offsets) + 0.5
    amps = class_rng.uniform(0.5, 1.5, size=(n_classes, n_harmonics, n_channels))
    return freqs, amps


def _gen_harmonic(spec, class_rng, sample_rng, label, n_samples):
    freqs, amps = _harmonic_prototypes(
        class_rng, spec.n_classes, spec.n_channels, spec.separation
    )
    t_grid = np.arange(spec.length)[:, np.newaxis] / spec.length  # (T, 1)
    out = np.empty((n_samples, spec.length, spec.n_channels))
    for i in range(n_samples):
        phases = sample_rng.uniform(0, 2 * np.pi,
                                    size=(freqs.shape[1], spec.n_channels))
        amp_jitter = 1.0 + 0.15 * sample_rng.normal(
            size=(freqs.shape[1], spec.n_channels)
        )
        signal = np.zeros((spec.length, spec.n_channels))
        for h in range(freqs.shape[1]):
            signal += (amps[label, h] * amp_jitter[h]) * np.sin(
                2 * np.pi * freqs[label, h] * t_grid + phases[h]
            )
        out[i] = signal + spec.noise * sample_rng.normal(
            size=(spec.length, spec.n_channels)
        )
    return out


# --------------------------------------------------------------------- #
# motion family
# --------------------------------------------------------------------- #

def _motion_prototypes(class_rng, n_classes, length, n_channels, separation):
    """Smooth random trajectories, one per class, unit-ish scale.

    Each prototype combines a smooth random path with a class-specific
    oscillatory component (gestures and gaits have class-dependent rhythm),
    so classes differ both in mean shape and in second-moment structure —
    the latter is what lag-product representations like the DPRR measure.
    """
    protos = np.empty((n_classes, length, n_channels))
    shared = _smooth(class_rng.normal(size=(length, n_channels)),
                     max(3, length // 10))
    t_grid = np.arange(length)[:, np.newaxis] / length
    freqs = class_rng.uniform(2.0, 8.0, size=n_classes)
    phases = class_rng.uniform(0, 2 * np.pi, size=(n_classes, n_channels))
    for cls in range(n_classes):
        own = _smooth(class_rng.normal(size=(length, n_channels)),
                      max(3, length // 10))
        rhythm = np.sin(2 * np.pi * freqs[cls] * t_grid + phases[cls])
        raw = shared + separation * (2.0 * own + 0.8 * rhythm)
        raw = raw - raw.mean(axis=0)
        scale = raw.std(axis=0)
        scale[scale < 1e-9] = 1.0
        protos[cls] = raw / scale
    return protos


def _random_warp(sample_rng, length, strength=0.15):
    """A random monotone time warp as fractional source indices."""
    n_knots = 4
    knots = np.linspace(0, 1, n_knots)
    perturbed = knots + sample_rng.normal(scale=strength / n_knots, size=n_knots)
    perturbed[0], perturbed[-1] = 0.0, 1.0
    perturbed = np.maximum.accumulate(perturbed)
    perturbed /= max(perturbed[-1], 1e-9)
    grid = np.linspace(0, 1, length)
    return np.interp(grid, knots, perturbed) * (length - 1)


def _gen_motion(spec, class_rng, sample_rng, label, n_samples):
    protos = _motion_prototypes(
        class_rng, spec.n_classes, spec.length, spec.n_channels, spec.separation
    )
    proto = protos[label]
    src = np.arange(spec.length, dtype=np.float64)
    out = np.empty((n_samples, spec.length, spec.n_channels))
    # observation noise of physical motion sensors is band-limited, not
    # white: a low-pass window keeps short-lag statistics informative (white
    # noise would swamp the lag-1 products the DPRR is built from)
    noise_window = max(2, spec.length // 50)
    for i in range(n_samples):
        warp = _random_warp(sample_rng, spec.length)
        warped = np.empty_like(proto)
        for ch in range(spec.n_channels):
            warped[:, ch] = np.interp(warp, src, proto[:, ch])
        gain = 1.0 + 0.1 * sample_rng.normal()
        drift = _smooth(sample_rng.normal(size=(spec.length, spec.n_channels)),
                        max(3, spec.length // 6)) * 0.3
        noise = _smooth(
            sample_rng.normal(size=(spec.length, spec.n_channels)), noise_window
        ) * np.sqrt(noise_window)  # keep the variance at spec.noise**2
        out[i] = gain * warped + drift + spec.noise * noise
    return out


# --------------------------------------------------------------------- #
# beat family (ECG-like)
# --------------------------------------------------------------------- #

def _beat_prototypes(class_rng, n_classes):
    """Class prototype: beat period, pulse width, and R/T amplitude ratio."""
    periods = class_rng.uniform(18, 30, size=n_classes)
    widths = class_rng.uniform(1.5, 3.0, size=n_classes)
    ratios = class_rng.uniform(0.2, 0.6, size=n_classes)
    return periods, widths, ratios


def _gen_beat(spec, class_rng, sample_rng, label, n_samples):
    periods, widths, ratios = _beat_prototypes(class_rng, spec.n_classes)
    sep = spec.separation
    period = periods[label] * (1 + 0.5 * sep * (label - spec.n_classes / 2)
                               / max(spec.n_classes, 1))
    width = widths[label]
    ratio = ratios[label]
    t_grid = np.arange(spec.length, dtype=np.float64)
    out = np.empty((n_samples, spec.length, spec.n_channels))
    for i in range(n_samples):
        jitter = 1.0 + 0.05 * sample_rng.normal()
        phase = sample_rng.uniform(0, period)
        signal = np.zeros(spec.length)
        center = phase
        while center < spec.length + 3 * width:
            # R wave (sharp positive) followed by a broader T wave
            signal += np.exp(-0.5 * ((t_grid - center) / width) ** 2)
            signal -= ratio * np.exp(
                -0.5 * ((t_grid - center - 2.5 * width) / (2 * width)) ** 2
            )
            center += period * jitter
        wander = _smooth(sample_rng.normal(size=(spec.length, 1)),
                         max(3, spec.length // 5))[:, 0] * 0.3
        base = signal + wander
        for ch in range(spec.n_channels):
            lag = ch * 2
            shifted = np.roll(base, lag)
            out[i, :, ch] = (0.8**ch) * shifted + spec.noise * sample_rng.normal(
                size=spec.length
            )
    return out


# --------------------------------------------------------------------- #
# regime family (Wafer-like)
# --------------------------------------------------------------------- #

def _regime_prototypes(class_rng, n_classes, n_channels, separation):
    """Class prototype: the piecewise-constant level program per segment."""
    n_segments = 6
    levels = class_rng.uniform(-1.5, 1.5,
                               size=(n_classes, n_segments, n_channels))
    levels *= separation * 1.5
    return levels


def _gen_regime(spec, class_rng, sample_rng, label, n_samples):
    levels = _regime_prototypes(
        class_rng, spec.n_classes, spec.n_channels, spec.separation
    )
    n_segments = levels.shape[1]
    bounds = np.linspace(0, spec.length, n_segments + 1).astype(int)
    out = np.empty((n_samples, spec.length, spec.n_channels))
    for i in range(n_samples):
        signal = np.zeros((spec.length, spec.n_channels))
        for seg in range(n_segments):
            lo, hi = bounds[seg], bounds[seg + 1]
            wobble = 0.1 * sample_rng.normal(size=spec.n_channels)
            signal[lo:hi] = levels[label, seg] + wobble
            if lo > 0:  # transition transient (exponentially decaying spike)
                span = min(8, spec.length - lo)
                decay = np.exp(-np.arange(span) / 2.0)[:, np.newaxis]
                signal[lo: lo + span] += (
                    (levels[label, seg] - levels[label, seg - 1]) * 0.8 * decay
                )
        smooth = _smooth(signal, 3)
        out[i] = smooth + spec.noise * sample_rng.normal(
            size=(spec.length, spec.n_channels)
        )
    return out


# --------------------------------------------------------------------- #
# burst family (NetFlow-like)
# --------------------------------------------------------------------- #

def _burst_prototypes(class_rng, n_classes, n_channels, separation):
    """Class-specific burst windows (position, width, intensity/channel)."""
    n_windows = 4
    pos = class_rng.uniform(0.05, 0.95, size=(n_classes, n_windows))
    width = class_rng.uniform(0.03, 0.12, size=(n_classes, n_windows))
    intensity = class_rng.uniform(
        1.0, 4.0, size=(n_classes, n_windows, n_channels)
    ) * separation
    return pos, width, intensity


def _gen_burst(spec, class_rng, sample_rng, label, n_samples):
    pos, width, intensity = _burst_prototypes(
        class_rng, spec.n_classes, spec.n_channels, spec.separation
    )
    n_windows = pos.shape[1]
    t_grid = np.linspace(0, 1, spec.length)[:, np.newaxis]
    out = np.empty((n_samples, spec.length, spec.n_channels))
    base_rate = 1.0
    for i in range(n_samples):
        rate = np.full((spec.length, spec.n_channels), base_rate)
        for w in range(n_windows):
            jitter = 1 + 0.1 * sample_rng.normal()
            bump = np.exp(
                -0.5 * ((t_grid - pos[label, w]) / (width[label, w] * jitter)) ** 2
            )
            rate += bump * intensity[label, w]
        counts = sample_rng.poisson(rate).astype(np.float64)
        # exponential smoothing mimics flow aggregation
        smoothed = np.empty_like(counts)
        acc = counts[0]
        for k in range(spec.length):
            acc = 0.7 * acc + 0.3 * counts[k]
            smoothed[k] = acc
        out[i] = np.log1p(smoothed) + spec.noise * sample_rng.normal(
            size=(spec.length, spec.n_channels)
        )
    return out


FAMILIES: Dict[str, Callable] = {
    "harmonic": _gen_harmonic,
    "motion": _gen_motion,
    "beat": _gen_beat,
    "regime": _gen_regime,
    "burst": _gen_burst,
}

#: per-family prototype builders — the exact first draws each generator
#: makes from its class stream, exposed so tests can pin the docstring
#: claim that class structure never depends on sample counts
_PROTOTYPE_BUILDERS: Dict[str, Callable] = {
    "harmonic": lambda spec, rng: dict(zip(
        ("freqs", "amps"),
        _harmonic_prototypes(rng, spec.n_classes, spec.n_channels,
                             spec.separation),
    )),
    "motion": lambda spec, rng: {
        "protos": _motion_prototypes(rng, spec.n_classes, spec.length,
                                     spec.n_channels, spec.separation),
    },
    "beat": lambda spec, rng: dict(zip(
        ("periods", "widths", "ratios"),
        _beat_prototypes(rng, spec.n_classes),
    )),
    "regime": lambda spec, rng: {
        "levels": _regime_prototypes(rng, spec.n_classes, spec.n_channels,
                                     spec.separation),
    },
    "burst": lambda spec, rng: dict(zip(
        ("pos", "width", "intensity"),
        _burst_prototypes(rng, spec.n_classes, spec.n_channels,
                          spec.separation),
    )),
}


def _class_seed(spec, seed):
    """The prototype-stream seed for ``(seed, spec.key)``.

    Shared by :func:`generate_family` and :func:`family_prototypes`, so
    the prototypes the latter reports are *exactly* the ones every
    generated sample was built from.
    """
    key_hash = zlib.crc32(spec.key.encode())
    if seed is None:
        master = ensure_rng(None)
    else:
        # fold the dataset key into the seed so each dataset gets its own
        # deterministic stream for a given base seed
        master = np.random.default_rng([int(seed), key_hash])
    seed_rng, sample_rng = spawn_rng(master, 2)
    return int(seed_rng.integers(2**63 - 1)), sample_rng


def family_prototypes(spec, seed=None) -> Dict[str, np.ndarray]:
    """The class prototypes a ``(spec, seed)`` pair generates from.

    Returns the named prototype arrays of ``spec.family`` (e.g. ``freqs``
    and ``amps`` for ``harmonic``).  These depend only on ``(seed,
    spec.key)`` and the structural parameters — never on sample counts —
    which is the invariant that keeps class structure identical across
    train/test and across dataset sizes.
    """
    try:
        builder = _PROTOTYPE_BUILDERS[spec.family]
    except KeyError:
        known = ", ".join(sorted(_PROTOTYPE_BUILDERS))
        raise ValueError(
            f"unknown family {spec.family!r}; known: {known}"
        ) from None
    class_seed, _ = _class_seed(spec, seed)
    return builder(spec, np.random.default_rng(class_seed))


def generate_family(spec, n_train: int, n_test: int, seed=None):
    """Generate a balanced train/test split for a dataset spec.

    Parameters
    ----------
    spec:
        A :class:`~repro.data.metadata.DatasetSpec` (or anything exposing
        ``key, family, length, n_channels, n_classes, noise, separation``).
    n_train, n_test:
        Sample counts; distributed over the classes as evenly as possible.
    seed:
        Base seed.  The class prototypes are drawn from a stream derived
        from ``(seed, spec.key)`` only, so the class structure is stable
        across sample counts; samples come from an independent stream.

    Returns
    -------
    (u_train, y_train, u_test, y_test)
    """
    try:
        gen = FAMILIES[spec.family]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise ValueError(f"unknown family {spec.family!r}; known: {known}") from None
    # prototypes depend only on (seed, key), never on sample counts: every
    # generator call rebuilds the identical prototype stream from this seed
    class_seed, sample_rng = _class_seed(spec, seed)

    def build(n_samples):
        counts = class_counts(n_samples, spec.n_classes)
        chunks = []
        labels = []
        for label, count in enumerate(counts):
            class_rng = np.random.default_rng(class_seed)
            chunks.append(gen(spec, class_rng, sample_rng, label, int(count)))
            labels.append(np.full(int(count), label, dtype=np.int64))
        u = np.concatenate(chunks, axis=0)
        y = np.concatenate(labels)
        order = sample_rng.permutation(u.shape[0])
        return u[order], y[order]

    u_train, y_train = build(n_train)
    u_test, y_test = build(n_test)
    return u_train, y_train, u_test, y_test
