"""Built-in series generators: regression classics + signal-like families.

Registered on import (via :mod:`repro.data.registry`):

``narma``
    Order-``N`` NARMA input/target streams — the registry promotion of
    :func:`repro.data.regression.narma` (``narma(order=10)`` is the
    classic NARMA-10, bit-identical to :func:`~repro.data.regression.narma10`).
``mackey_glass``
    The chaotic Mackey–Glass series of
    :func:`repro.data.regression.mackey_glass_series`, with the full
    ``tau``/``beta``/``gamma``/``p`` sweep surface.
``eeg_pink``
    Multi-channel EEG-like 1/f pink noise (cascade of three first-order
    IIR stages over white noise — the classic economy pinking filter).
``am_fm``
    Audio-style AM/FM waveforms: per-channel carriers with sinusoidal
    amplitude and frequency modulation plus observation noise.
``drift``
    Nonstationary wrapper composing over *any* base spec: a slow
    sinusoidal gain/offset envelope along the stream axis turns any
    stationary family into a concept-drift workload.

Every generator here implements **true streaming**: chunked generation
carries O(state) memory (filter taps, recursion tails, RNG position) and
is bit-identical to eager generation — sequential RNG draws concatenate
exactly, IIR recursions carry their state across chunk boundaries, and
phase/envelope terms are computed from absolute stream indices.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np
from scipy.signal import lfilter

from repro.data.regression import mackey_glass_series, narma
from repro.data.registry import Generator, GeneratorSpec, register_generator
from repro.utils.rng import ensure_rng, spawn_rng

__all__ = [
    "NarmaGenerator",
    "MackeyGlassGenerator",
    "PinkNoiseGenerator",
    "AmFmGenerator",
    "DriftGenerator",
]


class _ChunkBuffer:
    """Re-chunk aligned per-key array pushes into exact ``chunk_len`` pieces."""

    def __init__(self, keys, chunk_len: int):
        self._parts: Dict[str, List[np.ndarray]] = {k: [] for k in keys}
        self._count = 0
        self._chunk_len = int(chunk_len)

    def push(self, arrays: Dict[str, np.ndarray]) -> None:
        lengths = {arr.shape[0] for arr in arrays.values()}
        if len(lengths) > 1:
            raise ValueError(f"misaligned chunk push: lengths {lengths}")
        for key, arr in arrays.items():
            self._parts[key].append(arr)
        self._count += next(iter(lengths)) if lengths else 0

    def drain(self, final: bool = False) -> Iterator[Dict[str, np.ndarray]]:
        while (self._count >= self._chunk_len
               or (final and self._count > 0)):
            merged = {k: np.concatenate(v, axis=0)
                      for k, v in self._parts.items()}
            take = min(self._chunk_len, self._count)
            yield {k: arr[:take] for k, arr in merged.items()}
            self._parts = {k: [arr[take:]] for k, arr in merged.items()}
            self._count -= take


@register_generator
class NarmaGenerator(Generator):
    """Order-``N`` NARMA streams; ``{"u", "y"}`` along the time axis."""

    name = "narma"
    kind = "series"
    defaults = {"n_steps": 1000, "order": 10, "washout": None}

    @staticmethod
    def _resolve_washout(params: Dict) -> int:
        washout = params["washout"]
        return int(washout) if washout is not None \
            else max(50, 5 * int(params["order"]))

    def generate(self, params: Dict, seed: int) -> Dict[str, np.ndarray]:
        u, y = narma(
            int(params["n_steps"]), order=int(params["order"]), seed=int(seed),
            washout=params["washout"] if params["washout"] is None
            else int(params["washout"]),
        )
        return {"u": u, "y": y}

    def generate_chunks(
        self, params: Dict, seed: int, chunk_len: int
    ) -> Iterator[Dict[str, np.ndarray]]:
        n_steps = int(params["n_steps"])
        order = int(params["order"])
        washout = self._resolve_washout(params)
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if washout < order:
            raise ValueError(
                f"washout must cover the order of the system (>= {order})"
            )
        rng = ensure_rng(int(seed))
        total = n_steps + washout
        # carried state: the last `order` inputs/outputs (chronological)
        u_tail = np.zeros(0)
        y_tail = np.zeros(0)
        produced = 0
        buf = _ChunkBuffer(("u", "y"), chunk_len)
        while produced < total:
            m = min(max(chunk_len, order), total - produced)
            u_ext = np.concatenate([u_tail, rng.uniform(0.0, 0.5, size=m)])
            y_ext = np.concatenate([y_tail, np.zeros(m)])
            tail_len = len(u_tail)
            for j in range(m):
                g = produced + j  # global stream index of this sample
                if g >= order:
                    k = tail_len + j
                    window_sum = y_ext[k - order: k].sum()
                    val = (
                        0.3 * y_ext[k - 1]
                        + 0.05 * y_ext[k - 1] * window_sum
                        + 1.5 * u_ext[k - order] * u_ext[k - 1] + 0.1
                    )
                    if not np.isfinite(val):  # pragma: no cover - defensive
                        val = 0.0
                    y_ext[k] = val
            lo = max(washout - produced, 0)
            if lo < m:
                buf.push({"u": u_ext[tail_len + lo: tail_len + m],
                          "y": y_ext[tail_len + lo: tail_len + m]})
            produced += m
            u_tail = u_ext[-order:]
            y_tail = y_ext[-order:]
            yield from buf.drain()
        yield from buf.drain(final=True)


@register_generator
class MackeyGlassGenerator(Generator):
    """Chaotic Mackey–Glass streams; ``{"x"}`` along the time axis."""

    name = "mackey_glass"
    kind = "series"
    defaults = {
        "n_steps": 1000,
        "tau": 17.0,
        "beta": 0.2,
        "gamma": 0.1,
        "p": 10.0,
        "dt": 1.0,
        "substeps": 10,
        "washout": 500,
    }

    def generate(self, params: Dict, seed: int) -> Dict[str, np.ndarray]:
        x = mackey_glass_series(
            int(params["n_steps"]),
            tau=float(params["tau"]),
            beta=float(params["beta"]),
            gamma=float(params["gamma"]),
            p=float(params["p"]),
            dt=float(params["dt"]),
            substeps=int(params["substeps"]),
            seed=int(seed),
            washout=int(params["washout"]),
        )
        return {"x": x}

    def generate_chunks(
        self, params: Dict, seed: int, chunk_len: int
    ) -> Iterator[Dict[str, np.ndarray]]:
        n_steps = int(params["n_steps"])
        tau = float(params["tau"])
        beta = float(params["beta"])
        gamma = float(params["gamma"])
        p = float(params["p"])
        dt = float(params["dt"])
        substeps = int(params["substeps"])
        washout = int(params["washout"])
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        if tau <= 0 or dt <= 0 or substeps < 1:
            raise ValueError("tau, dt must be positive and substeps >= 1")
        rng = ensure_rng(int(seed))
        h = dt / substeps
        delay = max(1, int(round(tau / h)))
        # carried state: the last `delay` sub-step values of the stream
        carry = 1.2 + 0.1 * rng.standard_normal(delay)
        total_substeps = (n_steps + washout) * substeps
        done = 0
        buf = _ChunkBuffer(("x",), chunk_len)
        block = max(chunk_len * substeps, substeps)
        while done < total_substeps:
            m = min(block, total_substeps - done)
            ext = np.concatenate([carry, np.zeros(m)])
            for j in range(m):
                x_now = ext[delay + j - 1]
                x_delayed = ext[j]
                drive = beta * x_delayed / (1.0 + x_delayed**p) - gamma * x_now
                ext[delay + j] = x_now + h * drive
            # the eager path samples every `substeps`-th generated value and
            # discards the first `washout` samples
            idx = np.arange(done, done + m)
            sampled = idx[(idx % substeps == 0)
                          & (idx // substeps >= washout)]
            if sampled.size:
                buf.push({"x": ext[delay + (sampled - done)]})
            done += m
            carry = ext[-delay:]
            yield from buf.drain()
        yield from buf.drain(final=True)


#: the classic three-stage economy pinking filter: per stage, a one-pole
#: lowpass ``s[t] = a * s[t-1] + g * w[t]`` whose sum (plus a direct term)
#: approximates a 1/f spectrum over ~3 decades
_PINK_STAGES = ((0.99765, 0.0990460), (0.96300, 0.2965164),
                (0.57000, 1.0526913))
_PINK_DIRECT = 0.1848


@register_generator
class PinkNoiseGenerator(Generator):
    """Multi-channel EEG-like 1/f pink noise; ``{"u"}`` of shape (T, C)."""

    name = "eeg_pink"
    kind = "series"
    defaults = {"n_steps": 1024, "n_channels": 4, "amplitude": 1.0}

    def generate(self, params: Dict, seed: int) -> Dict[str, np.ndarray]:
        chunks = self.generate_chunks(params, seed, int(params["n_steps"]))
        return {"u": np.concatenate([c["u"] for c in chunks], axis=0)}

    def generate_chunks(
        self, params: Dict, seed: int, chunk_len: int
    ) -> Iterator[Dict[str, np.ndarray]]:
        n_steps = int(params["n_steps"])
        n_channels = int(params["n_channels"])
        amplitude = float(params["amplitude"])
        if n_steps < 1 or n_channels < 1:
            raise ValueError("n_steps and n_channels must be >= 1")
        rng = self.derive_rng(seed)
        # carried state: one filter tap per stage and channel
        zis = [np.zeros((1, n_channels)) for _ in _PINK_STAGES]
        for lo in range(0, n_steps, chunk_len):
            m = min(chunk_len, n_steps - lo)
            white = rng.standard_normal((m, n_channels))
            pink = _PINK_DIRECT * white
            for s, (a, g) in enumerate(_PINK_STAGES):
                filtered, zis[s] = lfilter(
                    [g], [1.0, -a], white, axis=0, zi=zis[s]
                )
                pink = pink + filtered
            yield {"u": amplitude * pink}


@register_generator
class AmFmGenerator(Generator):
    """Audio-style AM/FM waveforms; ``{"u"}`` of shape (T, C).

    Each channel carries a sinusoid at a randomly drawn carrier frequency,
    amplitude-modulated at ``am_rate`` (depth ``am_depth``) and
    frequency-modulated at ``fm_rate`` (peak deviation ``fm_depth`` Hz),
    plus white observation noise.  All phases come from the spec's
    prototype stream, so the waveform structure is a deterministic
    function of the spec; the noise stream is independent.
    """

    name = "am_fm"
    kind = "series"
    defaults = {
        "n_steps": 1024,
        "n_channels": 2,
        "sample_rate": 256.0,
        "carrier_low": 8.0,
        "carrier_high": 48.0,
        "am_rate": 2.0,
        "am_depth": 0.5,
        "fm_rate": 1.0,
        "fm_depth": 4.0,
        "noise": 0.05,
    }

    def generate(self, params: Dict, seed: int) -> Dict[str, np.ndarray]:
        chunks = self.generate_chunks(params, seed, int(params["n_steps"]))
        return {"u": np.concatenate([c["u"] for c in chunks], axis=0)}

    def generate_chunks(
        self, params: Dict, seed: int, chunk_len: int
    ) -> Iterator[Dict[str, np.ndarray]]:
        n_steps = int(params["n_steps"])
        n_channels = int(params["n_channels"])
        sample_rate = float(params["sample_rate"])
        if n_steps < 1 or n_channels < 1:
            raise ValueError("n_steps and n_channels must be >= 1")
        if sample_rate <= 0 or float(params["fm_rate"]) <= 0:
            raise ValueError("sample_rate and fm_rate must be positive")
        proto_rng, sample_rng = spawn_rng(self.derive_rng(seed), 2)
        carrier = proto_rng.uniform(
            float(params["carrier_low"]), float(params["carrier_high"]),
            size=n_channels,
        )
        phi_c = proto_rng.uniform(0, 2 * np.pi, size=n_channels)
        phi_am = proto_rng.uniform(0, 2 * np.pi, size=n_channels)
        phi_fm = proto_rng.uniform(0, 2 * np.pi, size=n_channels)
        # modulation index: peak phase swing of an fm_depth-Hz deviation
        beta_fm = float(params["fm_depth"]) / float(params["fm_rate"])
        two_pi = 2 * np.pi
        for lo in range(0, n_steps, chunk_len):
            hi = min(lo + chunk_len, n_steps)
            # absolute stream time: chunk-position independent, so every
            # deterministic term is bit-identical under any chunking
            t = (np.arange(lo, hi) / sample_rate)[:, np.newaxis]
            env = 1.0 + float(params["am_depth"]) * np.sin(
                two_pi * float(params["am_rate"]) * t + phi_am[np.newaxis, :]
            )
            mod = beta_fm * np.sin(
                two_pi * float(params["fm_rate"]) * t + phi_fm[np.newaxis, :]
            )
            x = env * np.sin(
                two_pi * carrier[np.newaxis, :] * t + phi_c[np.newaxis, :] + mod
            )
            x = x + float(params["noise"]) * sample_rng.standard_normal(
                (hi - lo, n_channels)
            )
            yield {"u": x}


_BASE_KEYS = {"name", "params", "seed"}


@register_generator
class DriftGenerator(Generator):
    """Nonstationary wrapper: slow gain/offset drift over any base spec.

    ``base`` names the wrapped spec (``{"name": ..., "params": {...},
    "seed": ...}``; ``params`` defaults to empty, ``seed`` to the
    wrapper's own seed).  Every float array of the base dataset is scaled
    by ``1 + gain_depth * sin(2 pi n / gain_period + phase)`` and shifted
    by ``offset_depth * sin(2 pi n / offset_period + phase)`` along axis 0
    (time for series bases, the sample stream for classification bases —
    i.e. concept drift across arrivals).  Phases come from the wrapper's
    prototype stream; integer arrays (labels) pass through untouched.

    Composes with streaming: the base is pulled through its own
    ``generate_chunks`` and the envelope is a function of the absolute
    stream index, so drifted chunked generation is bit-identical to
    drifted eager generation whenever the base's is.
    """

    name = "drift"
    kind = "series"  # overridden per-spec by kind_for
    defaults = {
        "base": {"name": "eeg_pink", "params": {}},
        "gain_depth": 0.5,
        "gain_period": 256.0,
        "offset_depth": 0.0,
        "offset_period": 512.0,
    }

    def _base_spec(self, params: Dict, seed: int) -> GeneratorSpec:
        base = params["base"]
        if not isinstance(base, dict) or "name" not in base:
            raise ValueError(
                "drift 'base' must be a dict with at least a 'name' key"
            )
        unknown = sorted(set(base) - _BASE_KEYS)
        if unknown:
            raise ValueError(
                f"unknown base spec keys {unknown}; allowed: "
                f"{sorted(_BASE_KEYS)}"
            )
        return GeneratorSpec(
            name=base["name"],
            params=base.get("params", {}),
            seed=base.get("seed", seed),
        )

    def kind_for(self, params: Dict) -> str:
        from repro.data.registry import get_generator

        base = self._base_spec(params, 0)
        base_gen = get_generator(base.name)
        return base_gen.kind_for(base_gen.resolve(base.params))

    def _phases(self, seed: int):
        rng = self.derive_rng(seed)
        return rng.uniform(0, 2 * np.pi), rng.uniform(0, 2 * np.pi)

    def _envelope(self, params: Dict, phases, offsets: Dict[str, int],
                  arrays: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        phi_g, phi_o = phases
        gain_period = float(params["gain_period"])
        offset_period = float(params["offset_period"])
        if gain_period <= 0 or offset_period <= 0:
            raise ValueError("gain_period and offset_period must be positive")
        out = {}
        for key, arr in arrays.items():
            start = offsets.get(key, 0)
            offsets[key] = start + arr.shape[0]
            if not np.issubdtype(arr.dtype, np.floating):
                out[key] = arr
                continue
            idx = np.arange(start, start + arr.shape[0], dtype=np.float64)
            shape = (-1,) + (1,) * (arr.ndim - 1)
            gain = (1.0 + float(params["gain_depth"])
                    * np.sin(2 * np.pi * idx / gain_period + phi_g))
            offset = (float(params["offset_depth"])
                      * np.sin(2 * np.pi * idx / offset_period + phi_o))
            out[key] = (arr * gain.reshape(shape)) + offset.reshape(shape)
        return out

    def generate(self, params: Dict, seed: int) -> Dict[str, np.ndarray]:
        from repro.data.registry import generate as registry_generate

        base_arrays = registry_generate(self._base_spec(params, seed))
        return self._envelope(params, self._phases(seed), {}, base_arrays)

    def generate_chunks(
        self, params: Dict, seed: int, chunk_len: int
    ) -> Iterator[Dict[str, np.ndarray]]:
        from repro.data.registry import generate_chunks as registry_chunks

        phases = self._phases(seed)
        offsets: Dict[str, int] = {}
        for chunk in registry_chunks(self._base_spec(params, seed), chunk_len):
            yield self._envelope(params, phases, offsets, chunk)
