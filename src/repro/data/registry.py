"""Parametric dataset-generator registry.

A dataset here is a *parametric function*, not a file: a declarative
:class:`GeneratorSpec` — generator ``name``, ``params`` dict, ``seed`` —
resolves through a registry to named arrays, deterministically.  Equal
specs always produce bitwise-equal data; the spec round-trips through a
strict, versioned JSON envelope (the same conventions as the
``repro-dfr-model`` document of :mod:`repro.serve.model_store`), so a
benchmark report can carry the exact datasets it was measured on.

Two generator kinds share the contract:

``classification``
    Balanced train/test sample sets — ``{"u_train", "y_train", "u_test",
    "y_test"}`` — as consumed by :class:`~repro.core.pipeline.DFRClassifier`
    and the scenario-matrix bench.  The five legacy families of
    :mod:`repro.data.synthetic` are registered here unchanged (bit-pinned
    against :func:`~repro.data.synthetic.generate_family`).
``series``
    Unbounded time streams — e.g. ``{"u", "y"}`` for NARMA — as consumed
    by the regression examples and the serve replayer.

Every generator supports **streaming chunked generation**
(:func:`generate_chunks`): chunks along axis 0 whose per-key concatenation
is bit-identical to the eager :func:`generate` output.  Series generators
stream with O(state) memory (carried filter/recursion state, sequential
RNG draws), so dataset scale is unbounded by memory; classification
generators fall back to eager-then-slice (their sample permutation couples
the whole set).

Registering a generator::

    @register_generator
    class MyFamily(Generator):
        name = "my_family"
        kind = "series"
        defaults = {"n_steps": 1024, "level": 1.0}

        def generate(self, params, seed):
            ...
            return {"u": u}

Unknown parameter names are rejected strictly — a typo in a sweep config
fails loudly instead of silently running the defaults.
"""

from __future__ import annotations

import copy
import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Type

import numpy as np

from repro.data.metadata import DatasetSpec, get_spec
from repro.data.synthetic import FAMILIES, generate_family

__all__ = [
    "SPEC_FORMAT",
    "SPEC_FORMAT_VERSION",
    "GeneratorSpec",
    "Generator",
    "register_generator",
    "registered_generators",
    "get_generator",
    "generator_kind",
    "make_spec",
    "spec_for_dataset",
    "generate",
    "generate_chunks",
    "concat_chunks",
    "dataset_from_spec",
]

#: magic string identifying a serialized dataset spec
SPEC_FORMAT = "repro-dataset-spec"
#: envelope schema version; bump on any envelope field change
SPEC_FORMAT_VERSION = 1

_ENVELOPE_KEYS = {"format", "format_version", "name", "params", "seed"}


@dataclass(frozen=True)
class GeneratorSpec:
    """Declarative dataset description: ``(name, params, seed) -> data``.

    ``params`` only needs the knobs that differ from the generator's
    defaults; unknown names are rejected at resolution time.  Two equal
    specs always generate bitwise-equal data.
    """

    name: str
    params: Dict = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "params", copy.deepcopy(dict(self.params)))
        object.__setattr__(self, "seed", int(self.seed))

    def label(self) -> str:
        """Compact display form, e.g. ``harmonic(n_classes=3)#0``."""
        inner = ",".join(f"{k}={self.params[k]}" for k in sorted(self.params))
        return f"{self.name}({inner})#{self.seed}"

    def to_dict(self) -> dict:
        """The versioned JSON envelope (strict inverse of :meth:`from_dict`)."""
        return {
            "format": SPEC_FORMAT,
            "format_version": SPEC_FORMAT_VERSION,
            "name": self.name,
            "params": copy.deepcopy(self.params),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GeneratorSpec":
        """Rebuild from :meth:`to_dict` output — strictly versioned."""
        if not isinstance(data, dict):
            raise TypeError(
                f"GeneratorSpec.from_dict needs a dict, got "
                f"{type(data).__name__}"
            )
        unknown = sorted(set(data) - _ENVELOPE_KEYS)
        missing = sorted(_ENVELOPE_KEYS - set(data))
        if unknown or missing:
            parts = []
            if unknown:
                parts.append(f"unknown keys {unknown}")
            if missing:
                parts.append(f"missing keys {missing}")
            raise ValueError(
                f"dataset spec does not match the {SPEC_FORMAT} "
                f"v{SPEC_FORMAT_VERSION} envelope: {'; '.join(parts)}"
            )
        if data["format"] != SPEC_FORMAT:
            raise ValueError(
                f"not a {SPEC_FORMAT} document (format={data['format']!r})"
            )
        if data["format_version"] != SPEC_FORMAT_VERSION:
            raise ValueError(
                f"unsupported {SPEC_FORMAT} format_version "
                f"{data['format_version']!r}; this release reads version "
                f"{SPEC_FORMAT_VERSION} only"
            )
        if not isinstance(data["params"], dict):
            raise TypeError(
                f"spec params must be a dict, got "
                f"{type(data['params']).__name__}"
            )
        return cls(name=str(data["name"]), params=data["params"],
                   seed=data["seed"])


class Generator:
    """Base class for registered dataset generators.

    Subclasses set ``name``, ``kind`` (``"classification"`` or
    ``"series"``), and ``defaults`` (the complete parameter schema — a
    spec may override any subset, nothing else), and implement
    :meth:`generate`.  Overriding :meth:`generate_chunks` opts into true
    streaming; the base implementation generates eagerly and slices, which
    is always bit-identical but not memory-bounded.
    """

    name: str = ""
    kind: str = "series"
    defaults: Dict = {}

    def resolve(self, params: Mapping) -> Dict:
        """Merge ``params`` over the defaults; unknown names raise."""
        unknown = sorted(set(params) - set(self.defaults))
        if unknown:
            known = ", ".join(sorted(self.defaults))
            raise ValueError(
                f"unknown parameter(s) {unknown} for generator "
                f"{self.name!r}; known: {known}"
            )
        merged = copy.deepcopy(dict(self.defaults))
        merged.update(copy.deepcopy(dict(params)))
        return merged

    def kind_for(self, params: Mapping) -> str:
        """The dataset kind this parameterization produces.

        Static for most generators; wrappers that compose over a base
        generator override this to report the base's kind.
        """
        return self.kind

    def derive_rng(self, seed: int) -> np.random.Generator:
        """The generator's dedicated stream for ``seed``.

        The generator name is folded into the seed so two different
        families never share a stream for the same base seed.
        """
        return np.random.default_rng([int(seed), zlib.crc32(self.name.encode())])

    def generate(self, params: Dict, seed: int) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def generate_chunks(
        self, params: Dict, seed: int, chunk_len: int
    ) -> Iterator[Dict[str, np.ndarray]]:
        """Yield the dataset in chunks along axis 0 of every array.

        Fallback implementation: generate eagerly, then slice — each chunk
        ``i`` covers rows ``[i * chunk_len, (i + 1) * chunk_len)`` of every
        array still holding rows there (shorter arrays simply end earlier).
        Per-key concatenation of the chunks is bit-identical to
        :meth:`generate` by construction.
        """
        arrays = self.generate(params, seed)
        n_max = max(a.shape[0] for a in arrays.values())
        for lo in range(0, n_max, chunk_len):
            yield {
                key: arr[lo: lo + chunk_len]
                for key, arr in arrays.items()
                if lo < arr.shape[0]
            }


_REGISTRY: Dict[str, Generator] = {}
_BUILTINS_LOADED = False


def register_generator(cls: Type[Generator]) -> Type[Generator]:
    """Class decorator adding a :class:`Generator` subclass to the registry."""
    if not (isinstance(cls, type) and issubclass(cls, Generator)):
        raise TypeError("register_generator decorates Generator subclasses")
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    if cls.kind not in ("classification", "series"):
        raise ValueError(
            f"{cls.__name__}.kind must be 'classification' or 'series', "
            f"got {cls.kind!r}"
        )
    if cls.name in _REGISTRY:
        raise ValueError(f"generator {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls()
    return cls


def _ensure_builtins() -> None:
    """Import the built-in series generators exactly once.

    The classification families register at this module's import; the
    series families live in :mod:`repro.data.generators`, which imports
    this module — so they are pulled in lazily to avoid the cycle.
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        import repro.data.generators  # noqa: F401  (registration side effect)


def registered_generators() -> Tuple[str, ...]:
    """All registered generator names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_generator(name: str) -> Generator:
    """Look up a registered generator by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown generator {name!r}; known: {known}"
        ) from None


def generator_kind(spec: GeneratorSpec) -> str:
    """``"classification"`` or ``"series"`` for this spec."""
    gen = get_generator(spec.name)
    return gen.kind_for(gen.resolve(spec.params))


def make_spec(name: str, *, seed: int = 0, **params) -> GeneratorSpec:
    """Build a validated spec (unknown generator / parameter names raise)."""
    spec = GeneratorSpec(name=name, params=params, seed=seed)
    get_generator(name).resolve(spec.params)  # strict validation
    return spec


def generate(spec: GeneratorSpec) -> Dict[str, np.ndarray]:
    """Resolve ``spec`` and generate the full dataset eagerly."""
    gen = get_generator(spec.name)
    return gen.generate(gen.resolve(spec.params), spec.seed)


def generate_chunks(
    spec: GeneratorSpec, chunk_len: int
) -> Iterator[Dict[str, np.ndarray]]:
    """Stream the dataset in chunks; concatenation ≡ :func:`generate`."""
    if chunk_len < 1:
        raise ValueError(f"chunk_len must be >= 1, got {chunk_len}")
    gen = get_generator(spec.name)
    return gen.generate_chunks(gen.resolve(spec.params), spec.seed,
                               int(chunk_len))


def concat_chunks(
    chunks: Iterator[Dict[str, np.ndarray]]
) -> Dict[str, np.ndarray]:
    """Reassemble a chunk stream into the eager dict (test/parity helper)."""
    parts: Dict[str, List[np.ndarray]] = {}
    for chunk in chunks:
        for key, arr in chunk.items():
            parts.setdefault(key, []).append(arr)
    return {key: np.concatenate(arrs, axis=0) for key, arrs in parts.items()}


# --------------------------------------------------------------------- #
# classification families (bit-pinned ports of repro.data.synthetic)
# --------------------------------------------------------------------- #

class _FamilyGenerator(Generator):
    """Registry port of one legacy :func:`generate_family` family.

    ``generate`` delegates to the exact pre-registry code path, so output
    is bit-identical to calling ``generate_family`` with an equivalent
    :class:`~repro.data.metadata.DatasetSpec` (golden-pinned in
    ``tests/test_registry.py``).  The ``key`` parameter feeds the same
    seed-folding hash the legacy path used, so the registry can reproduce
    any of the paper's 12 datasets exactly (see :func:`spec_for_dataset`).
    """

    kind = "classification"
    defaults = {
        "n_classes": 3,
        "n_channels": 2,
        "length": 40,
        "n_train": 60,
        "n_test": 60,
        "noise": 0.3,
        "separation": 1.0,
        "key": None,
    }

    def generate(self, params: Dict, seed: int) -> Dict[str, np.ndarray]:
        key = params["key"]
        dataset_spec = DatasetSpec(
            key=key if key is not None else f"TOY-{self.name}",
            full_name=f"registry {self.name} dataset",
            n_channels=int(params["n_channels"]),
            length=int(params["length"]),
            n_classes=int(params["n_classes"]),
            train_paper=int(params["n_train"]),
            test_paper=int(params["n_test"]),
            train_bench=int(params["n_train"]),
            test_bench=int(params["n_test"]),
            family=self.name,
            noise=float(params["noise"]),
            separation=float(params["separation"]),
        )
        u_train, y_train, u_test, y_test = generate_family(
            dataset_spec, int(params["n_train"]), int(params["n_test"]),
            seed=int(seed),
        )
        return {"u_train": u_train, "y_train": y_train,
                "u_test": u_test, "y_test": y_test}


def _register_families() -> None:
    for family in FAMILIES:
        cls = type(
            f"_{family.capitalize()}Family",
            (_FamilyGenerator,),
            {"name": family},
        )
        register_generator(cls)


_register_families()


def spec_for_dataset(
    key: str, *, size_profile: str = "bench", seed: int = 0
) -> GeneratorSpec:
    """The registry spec reproducing one of the paper's 12 datasets.

    ``generate(spec_for_dataset(key, seed=s))`` is bit-identical to
    ``load_dataset(key, seed=s)`` (pinned in ``tests/test_registry.py``).
    """
    ds = get_spec(key)
    n_train, n_test = ds.sizes(size_profile)
    return make_spec(
        ds.family,
        seed=seed,
        n_classes=ds.n_classes,
        n_channels=ds.n_channels,
        length=ds.length,
        n_train=n_train,
        n_test=n_test,
        noise=ds.noise,
        separation=ds.separation,
        key=ds.key,
    )


def dataset_from_spec(spec: GeneratorSpec):
    """Materialize a classification spec as a
    :class:`~repro.data.loaders.LoadedDataset` (the shape every search and
    bench harness consumes).  Series specs raise — stream those through
    :func:`generate_chunks` / the serve replayer instead.
    """
    from repro.data.loaders import LoadedDataset

    gen = get_generator(spec.name)
    params = gen.resolve(spec.params)
    if gen.kind_for(params) != "classification":
        raise ValueError(
            f"spec {spec.label()!r} is a series dataset; "
            f"dataset_from_spec needs a classification generator"
        )
    arrays = generate(spec)
    u_train = arrays["u_train"]
    _, length, n_channels = u_train.shape
    n_classes = int(max(arrays["y_train"].max(), arrays["y_test"].max())) + 1
    dataset_spec = DatasetSpec(
        key=spec.label(),
        full_name=f"registry spec {spec.label()}",
        n_channels=int(n_channels),
        length=int(length),
        n_classes=n_classes,
        train_paper=int(u_train.shape[0]),
        test_paper=int(arrays["u_test"].shape[0]),
        train_bench=int(u_train.shape[0]),
        test_bench=int(arrays["u_test"].shape[0]),
        family=spec.name,
        noise=float(params.get("noise", 0.0) or 0.0),
        separation=float(params.get("separation", 0.0) or 0.0),
    )
    return LoadedDataset(
        key=dataset_spec.key,
        u_train=u_train,
        y_train=arrays["y_train"],
        u_test=arrays["u_test"],
        y_test=arrays["y_test"],
        spec=dataset_spec,
    )
