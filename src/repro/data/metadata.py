"""Registry of the paper's 12 evaluation datasets.

The paper evaluates on the multivariate time-series classification benchmark
of Bianchi et al. [4] (npz distribution).  Those files are not available
offline, so this library ships *synthetic generators*
(:mod:`repro.data.synthetic`) parameterized by the metadata recorded here.

Provenance of the numbers
-------------------------
``length`` (T) and ``n_classes`` (N_y) are **derived from the paper
itself**: with ``N_x = 30``, Table 2's storage counts satisfy

.. math::

    \\text{naive} &= N_x (T+1) + N_x(N_x+1) + N_y\\,(N_x(N_x+1)+1),\\\\
    \\text{simplified} &= 2 N_x + N_x(N_x+1) + N_y\\,(N_x(N_x+1)+1),

which invert uniquely to the ``(T, N_y)`` recorded below — all 12 rows are
consistent, and :mod:`tests.test_memory` re-derives the paper's Table 2
*exactly* from these values.  Channel counts and train/test sizes come from
the public metadata of the same benchmark (ArabicDigits, Auslan,
CharacterTrajectories, CMUsubject16, ECG, JapaneseVowels, KickVsPunch,
Libras, NetFlow, uWave, Wafer, WalkVsRun).

``train_bench``/``test_bench`` are scaled-down sample counts used by the
benchmark harness so the full Table 1 protocol completes on a laptop; the
original sizes stay available through ``size_profile="paper"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "N_X_PAPER",
    "DatasetSpec",
    "DATASETS",
    "dataset_keys",
    "get_spec",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
]

#: the paper's reservoir size (Sec. 4)
N_X_PAPER = 30


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one benchmark dataset.

    Attributes
    ----------
    key:
        Short name used throughout the paper's tables.
    full_name:
        The underlying benchmark dataset.
    n_channels:
        Input channels ``C``.
    length:
        Series length ``T`` (paper-exact, from the Table 2 inversion).
    n_classes:
        Class count ``N_y`` (paper-exact, from the Table 2 inversion).
    train_paper, test_paper:
        Sample counts of the original benchmark distribution.
    train_bench, test_bench:
        Scaled-down counts used by the reproduction benches.
    family:
        Synthetic-generator family (see :mod:`repro.data.synthetic`).
    noise:
        Observation-noise level of the generator (difficulty knob).
    separation:
        Between-class structural separation of the generator.
    """

    key: str
    full_name: str
    n_channels: int
    length: int
    n_classes: int
    train_paper: int
    test_paper: int
    train_bench: int
    test_bench: int
    family: str
    noise: float
    separation: float

    def sizes(self, size_profile: str = "bench") -> Tuple[int, int]:
        """(n_train, n_test) for a size profile (``"bench"`` or ``"paper"``)."""
        if size_profile == "bench":
            return self.train_bench, self.test_bench
        if size_profile == "paper":
            return self.train_paper, self.test_paper
        raise ValueError(
            f"size_profile must be 'bench' or 'paper', got {size_profile!r}"
        )


def _spec(*args, **kwargs) -> DatasetSpec:
    return DatasetSpec(*args, **kwargs)


#: the 12 datasets of the paper's evaluation, in Table 1/2 row order
DATASETS: Dict[str, DatasetSpec] = {
    spec.key: spec
    for spec in [
        _spec("ARAB", "ArabicDigits (spoken-digit MFCCs)", 13, 92, 10,
              6600, 2200, 300, 200, family="harmonic", noise=0.45, separation=1.0),
        _spec("AUS", "Auslan (sign-language glove)", 22, 135, 95,
              1140, 1425, 285, 190, family="motion", noise=0.22, separation=1.0),
        _spec("CHAR", "CharacterTrajectories (pen strokes)", 3, 204, 20,
              300, 2558, 300, 200, family="motion", noise=0.45, separation=0.55),
        _spec("CMU", "CMUsubject16 (walk vs run MoCap)", 62, 579, 2,
              29, 29, 29, 29, family="motion", noise=0.55, separation=0.8),
        _spec("ECG", "ECG (two-lead heartbeats)", 2, 151, 2,
              100, 100, 100, 100, family="beat", noise=0.9, separation=0.45),
        _spec("JPVOW", "JapaneseVowels (speaker LPC)", 12, 28, 9,
              270, 370, 270, 370, family="harmonic", noise=0.35, separation=1.0),
        _spec("KICK", "KickVsPunch (MoCap)", 62, 840, 2,
              16, 10, 16, 10, family="motion", noise=0.6, separation=0.7),
        _spec("LIB", "Libras (hand trajectories)", 2, 44, 15,
              180, 180, 180, 180, family="motion", noise=0.5, separation=0.5),
        _spec("NET", "NetFlow (traffic classes)", 4, 993, 13,
              803, 534, 130, 130, family="burst", noise=0.5, separation=0.8),
        _spec("UWAV", "uWave (accelerometer gestures)", 3, 314, 8,
              200, 428, 160, 160, family="motion", noise=0.55, separation=0.6),
        _spec("WAF", "Wafer (fab process sensors)", 6, 197, 2,
              298, 896, 150, 150, family="regime", noise=0.35, separation=0.8),
        _spec("WALK", "WalkVsRun (gait MoCap)", 62, 1917, 2,
              28, 16, 28, 16, family="harmonic", noise=0.05, separation=3.0),
    ]
}


def dataset_keys() -> Tuple[str, ...]:
    """All dataset keys in the paper's table order."""
    return tuple(DATASETS)


def get_spec(key: str) -> DatasetSpec:
    """Look up a dataset spec by key (case-insensitive)."""
    normalized = key.upper()
    try:
        return DATASETS[normalized]
    except KeyError:
        known = ", ".join(DATASETS)
        raise KeyError(f"unknown dataset {key!r}; known: {known}") from None


#: Paper Table 1 — (bp accuracy, bp seconds, gs divisions, gs seconds,
#: gs/bp time ratio); kept for reporting paper-vs-measured comparisons.
PAPER_TABLE1: Dict[str, Tuple[float, float, int, float, float]] = {
    "ARAB": (0.981, 245.0, 8, 25040.0, 102.2),
    "AUS": (0.954, 54.0, 8, 5535.0, 102.5),
    "CHAR": (0.918, 44.0, 10, 4820.0, 109.5),
    "CMU": (0.931, 4.0, 1, 3.0, 0.8),
    "ECG": (0.850, 11.0, 16, 4977.0, 452.5),
    "JPVOW": (0.978, 4.0, 4, 106.0, 26.5),
    "KICK": (0.800, 7.0, 1, 2.0, 0.3),
    "LIB": (0.806, 12.0, 18, 8423.0, 701.9),
    "NET": (0.783, 45.0, 1, 49.0, 1.1),
    "UWAV": (0.850, 65.0, 10, 6322.0, 97.3),
    "WAF": (0.983, 14.0, 3, 188.0, 13.4),
    "WALK": (1.000, 4.0, 1, 3.0, 0.8),
}

#: Paper Table 2 — (naive stored values, simplified stored values,
#: reduction %); reproduced exactly by repro.memory.accounting.
PAPER_TABLE2: Dict[str, Tuple[int, int, int]] = {
    "ARAB": (13030, 10300, 21),
    "AUS": (93455, 89435, 4),
    "CHAR": (25700, 19610, 24),
    "CMU": (20192, 2852, 86),
    "ECG": (7352, 2852, 61),
    "JPVOW": (10179, 9369, 8),
    "KICK": (28022, 2852, 90),
    "LIB": (16245, 14955, 8),
    "NET": (42853, 13093, 69),
    "UWAV": (17828, 8438, 53),
    "WAF": (8732, 2852, 67),
    "WALK": (60332, 2852, 95),
}
