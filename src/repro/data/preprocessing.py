"""Preprocessing utilities: channel standardization and stratified splits."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import as_batch, ensure_1d_labels

__all__ = ["ChannelStandardizer", "stratified_split", "pad_or_truncate"]


class ChannelStandardizer:
    """Per-channel z-scoring fitted on the training batch.

    Statistics are computed over all samples and time steps of each channel;
    channels with (near-)zero variance are left centered but unscaled.
    """

    def __init__(self, epsilon: float = 1e-12):
        self.epsilon = float(epsilon)
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, u: np.ndarray) -> "ChannelStandardizer":
        """Fit per-channel statistics on a batch ``(N, T, C)``."""
        u = as_batch(u)
        self.mean_ = u.mean(axis=(0, 1))
        std = u.std(axis=(0, 1))
        std[std < self.epsilon] = 1.0
        self.std_ = std
        return self

    def transform(self, u: np.ndarray) -> np.ndarray:
        """Standardize a batch using the fitted statistics."""
        if self.mean_ is None:
            raise RuntimeError("ChannelStandardizer must be fitted before transform")
        u = as_batch(u)
        if u.shape[2] != self.mean_.shape[0]:
            raise ValueError(
                f"batch has {u.shape[2]} channels, standardizer fitted on "
                f"{self.mean_.shape[0]}"
            )
        return (u - self.mean_) / self.std_

    def fit_transform(self, u: np.ndarray) -> np.ndarray:
        """Fit on ``u`` and return the standardized batch."""
        return self.fit(u).transform(u)


def stratified_split(
    y: np.ndarray, val_fraction: float, *, seed: SeedLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Split sample indices into (fit, validation) stratified by class.

    Every class keeps at least one sample on the fit side; classes with at
    least two samples contribute at least one sample to the validation side
    when ``val_fraction > 0``.  Classes with a single sample stay entirely on
    the fit side.

    Returns
    -------
    (fit_idx, val_idx):
        Integer index arrays, disjoint, covering all samples.
    """
    y = ensure_1d_labels(y)
    if not 0.0 <= val_fraction < 1.0:
        raise ValueError(f"val_fraction must lie in [0, 1), got {val_fraction}")
    rng = ensure_rng(seed)
    fit_parts = []
    val_parts = []
    for cls in np.unique(y):
        idx = np.flatnonzero(y == cls)
        idx = rng.permutation(idx)
        if val_fraction == 0.0 or idx.size < 2:
            fit_parts.append(idx)
            continue
        n_val = int(round(idx.size * val_fraction))
        n_val = max(1, min(n_val, idx.size - 1))
        val_parts.append(idx[:n_val])
        fit_parts.append(idx[n_val:])
    fit_idx = np.sort(np.concatenate(fit_parts)) if fit_parts else np.empty(0, int)
    val_idx = np.sort(np.concatenate(val_parts)) if val_parts else np.empty(0, int)
    return fit_idx, val_idx


def pad_or_truncate(u: np.ndarray, length: int) -> np.ndarray:
    """Force a batch ``(N, T, C)`` to exactly ``length`` time steps.

    Longer series are truncated at the end; shorter series are zero-padded
    at the end (the convention of the npz benchmark distribution the paper
    uses, where variable-length series are padded to the maximum length).
    """
    u = as_batch(u)
    n, t_len, c = u.shape
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    if t_len == length:
        return u
    if t_len > length:
        return u[:, :length, :]
    out = np.zeros((n, length, c))
    out[:, :t_len, :] = u
    return out
