"""Deterministic fault injection for the exec and serve layers.

Fault tolerance is only trustworthy if it is *provable*: this module is
the injection seam the supervision and retry machinery is tested against.
A :class:`FaultPlan` is a seeded, declarative list of :class:`FaultSpec`
records — spec'd like :class:`~repro.data.registry.GeneratorSpec`, with
the same strict versioned JSON envelope — that the runtime consults at a
handful of well-defined *sites*.  Because every fault is keyed on the
**logical identity** of the work (candidate index + dispatch attempt,
sweep-attempt ordinal, tick ordinal) rather than on wall-clock timing or
scheduling order, a plan fires identically no matter how work is sharded
across processes — which is what makes "recovered run is bit-identical to
the fault-free run" a testable statement.

Fault kinds and their sites:

``kill_worker``
    A worker process evaluating candidate ``at`` hard-exits
    (``os._exit``) while the dispatch attempt is below ``times``.  The
    parent sees a broken pool; supervision must rebuild and re-dispatch.
``raise_candidate``
    The worker wrapper raises :class:`FaultInjected` *before* evaluating
    candidate ``at`` (attempt below ``times``) — a transient in-worker
    failure, distinct from an ordinary evaluation error (which is data,
    not infrastructure, and is never retried).
``corrupt_row``
    The first ``times`` fused-block evaluations of candidate ``at`` are
    treated as corrupted; :class:`~repro.exec.VectorizedExecutor` must
    recover the row through its serial re-score path.
``raise_sweep``
    Serve-engine sweep attempts with ordinal in ``[at, at + times)``
    raise :class:`FaultInjected` before touching any state; the engine
    must retry and/or fall back to serial per-session sweeps.
``delay_tick``
    Serve-engine ticks with ordinal in ``[at, at + times)`` are delayed
    by ``delay_ms`` — through ``clock.advance`` under the virtual-clock
    replay harness (fully deterministic), ``time.sleep`` on a wall clock.

Install a plan with :func:`install_fault_plan` (which also exports it to
``os.environ`` so spawned worker processes inherit it) or externally via
``REPRO_FAULT_PLAN`` — either inline JSON or a path to a JSON file.  All
hooks are no-ops when no plan is active, so the production hot path pays
one dict lookup per site.

The injection sites live in the *wrappers* around evaluation (worker
entry points, engine tick/sweep), never inside
:func:`~repro.exec.context.evaluate_candidate` or the reservoir math:
injected faults look like infrastructure failures to the supervisor and
the numerics are untouched, which is what the bit-identity acceptance
test relies on.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "FAULT_PLAN_ENV",
    "PLAN_FORMAT",
    "PLAN_FORMAT_VERSION",
    "FAULT_KINDS",
    "KILL_EXIT_CODE",
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "install_fault_plan",
    "clear_fault_plan",
    "active_fault_plan",
    "on_worker_candidate",
    "should_corrupt_row",
    "maybe_raise_sweep",
    "tick_delay_s",
]

#: environment variable carrying a plan (inline JSON or a file path)
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: strict envelope identity (same discipline as ``GeneratorSpec``)
PLAN_FORMAT = "repro-fault-plan"
PLAN_FORMAT_VERSION = 1

#: exit status used by ``kill_worker`` — distinctive enough to grep for
KILL_EXIT_CODE = 87

FAULT_KINDS = (
    "kill_worker",
    "raise_candidate",
    "corrupt_row",
    "raise_sweep",
    "delay_tick",
)

_SPEC_KEYS = {"kind", "at", "times", "delay_ms"}
_ENVELOPE_KEYS = {"format", "format_version", "seed", "faults"}


class FaultInjected(RuntimeError):
    """Raised (or reported) by an injected fault.

    Supervisors treat this exactly like a transient infrastructure
    failure: it is retried, never recorded as an evaluation outcome.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: *kind* at logical position ``at``.

    ``times`` is how many firings the spec is good for (attempts for the
    worker kinds, ordinal window width for the sweep/tick kinds);
    ``delay_ms`` only applies to ``delay_tick``.
    """

    kind: str
    at: int
    times: int = 1
    delay_ms: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if int(self.at) < 0:
            raise ValueError(f"fault 'at' must be >= 0, got {self.at}")
        if int(self.times) < 1:
            raise ValueError(f"fault 'times' must be >= 1, got {self.times}")
        if not (float(self.delay_ms) >= 0.0):
            raise ValueError(
                f"fault 'delay_ms' must be finite and >= 0, got {self.delay_ms}"
            )
        if self.delay_ms and self.kind != "delay_tick":
            raise ValueError(
                f"'delay_ms' only applies to delay_tick, got it on {self.kind!r}"
            )
        object.__setattr__(self, "at", int(self.at))
        object.__setattr__(self, "times", int(self.times))
        object.__setattr__(self, "delay_ms", float(self.delay_ms))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at": self.at, "times": self.times,
                "delay_ms": self.delay_ms}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSpec":
        if not isinstance(payload, dict):
            raise ValueError(f"fault spec must be a dict, got {type(payload)}")
        unknown = set(payload) - _SPEC_KEYS
        if unknown:
            raise ValueError(f"unknown fault spec keys: {sorted(unknown)}")
        if "kind" not in payload or "at" not in payload:
            raise ValueError("fault spec requires 'kind' and 'at'")
        return cls(
            kind=payload["kind"],
            at=payload["at"],
            times=payload.get("times", 1),
            delay_ms=payload.get("delay_ms", 0.0),
        )


@dataclass
class FaultPlan:
    """A seeded, ordered list of faults with a strict JSON envelope.

    The ``seed`` tags the plan (and is reserved for future randomized
    kinds); the current kinds are purely logically keyed, so two runs
    under the same plan inject the same faults at the same logical
    positions regardless of scheduling.  Per-plan firing counters (for
    ``corrupt_row``) live on the instance and reset on (re)install.
    """

    faults: List[FaultSpec] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self):
        self.faults = [
            f if isinstance(f, FaultSpec) else FaultSpec.from_dict(f)
            for f in self.faults
        ]
        self.seed = int(self.seed)
        self._lock = threading.Lock()
        self._fired: Dict[int, int] = {}

    # -- envelope -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": PLAN_FORMAT,
            "format_version": PLAN_FORMAT_VERSION,
            "seed": self.seed,
            "faults": [f.to_dict() for f in self.faults],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError(f"fault plan must be a dict, got {type(payload)}")
        missing = _ENVELOPE_KEYS - set(payload)
        if missing:
            raise ValueError(f"fault plan missing keys: {sorted(missing)}")
        unknown = set(payload) - _ENVELOPE_KEYS
        if unknown:
            raise ValueError(f"unknown fault plan keys: {sorted(unknown)}")
        if payload["format"] != PLAN_FORMAT:
            raise ValueError(
                f"expected format {PLAN_FORMAT!r}, got {payload['format']!r}"
            )
        if payload["format_version"] != PLAN_FORMAT_VERSION:
            raise ValueError(
                f"unsupported fault plan version {payload['format_version']!r}"
            )
        if not isinstance(payload["faults"], list):
            raise ValueError("fault plan 'faults' must be a list")
        return cls(
            faults=[FaultSpec.from_dict(f) for f in payload["faults"]],
            seed=payload["seed"],
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # -- runtime checks ----------------------------------------------
    def reset(self) -> None:
        """Forget firing counters (a reinstalled plan starts fresh)."""
        with self._lock:
            self._fired.clear()

    def _consume(self, spec_index: int, times: int) -> bool:
        with self._lock:
            fired = self._fired.get(spec_index, 0)
            if fired >= times:
                return False
            self._fired[spec_index] = fired + 1
            return True

    def on_worker_candidate(self, index: int, attempt: int) -> None:
        """Worker-side seam: kill or raise before evaluating ``index``.

        ``attempt`` is the dispatch attempt of the work unit (0 on first
        dispatch); a spec stops firing once ``attempt >= times``, which
        is what lets a re-dispatched unit succeed.
        """
        for spec in self.faults:
            if spec.at != index or attempt >= spec.times:
                continue
            if spec.kind == "kill_worker":
                os._exit(KILL_EXIT_CODE)
            if spec.kind == "raise_candidate":
                raise FaultInjected(
                    f"injected candidate fault at index {index} "
                    f"(attempt {attempt})"
                )

    def should_corrupt_row(self, index: int) -> bool:
        """True when a fused-block row for ``index`` must be treated bad."""
        for i, spec in enumerate(self.faults):
            if spec.kind == "corrupt_row" and spec.at == index:
                if self._consume(i, spec.times):
                    return True
        return False

    def maybe_raise_sweep(self, ordinal: int) -> None:
        """Raise when serve sweep-attempt ``ordinal`` is inside a window."""
        for spec in self.faults:
            if (spec.kind == "raise_sweep"
                    and spec.at <= ordinal < spec.at + spec.times):
                raise FaultInjected(
                    f"injected sweep fault at attempt {ordinal}"
                )

    def tick_delay_s(self, ordinal: int) -> float:
        """Total injected delay (seconds) for serve tick ``ordinal``."""
        delay = 0.0
        for spec in self.faults:
            if (spec.kind == "delay_tick"
                    and spec.at <= ordinal < spec.at + spec.times):
                delay += spec.delay_ms / 1e3
        return delay


# -- process-global plan resolution ----------------------------------
# The installed plan is process-global; worker processes (which inherit
# os.environ at spawn) resolve their own copy lazily from the variable.
_ACTIVE: Optional[FaultPlan] = None
_ENV_CACHE: Optional[tuple] = None  # (raw string, parsed plan)


def _resolve_env_plan() -> Optional[FaultPlan]:
    global _ENV_CACHE
    raw = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if not raw:
        _ENV_CACHE = None
        return None
    if _ENV_CACHE is not None and _ENV_CACHE[0] == raw:
        return _ENV_CACHE[1]
    text = raw
    if not raw.lstrip().startswith("{"):
        with open(raw, "r", encoding="utf-8") as fh:
            text = fh.read()
    plan = FaultPlan.from_json(text)
    _ENV_CACHE = (raw, plan)
    return plan


def install_fault_plan(plan: FaultPlan) -> FaultPlan:
    """Activate ``plan`` in this process and export it to the environment.

    Exporting through ``REPRO_FAULT_PLAN`` is what lets worker processes
    spawned *after* installation inherit the plan.  Firing counters are
    reset so a reinstalled plan starts fresh.
    """
    global _ACTIVE
    plan.reset()
    _ACTIVE = plan
    os.environ[FAULT_PLAN_ENV] = plan.to_json()
    return plan


def clear_fault_plan() -> None:
    """Deactivate any installed plan (and scrub the environment)."""
    global _ACTIVE, _ENV_CACHE
    _ACTIVE = None
    _ENV_CACHE = None
    os.environ.pop(FAULT_PLAN_ENV, None)


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan in force: the installed one, else the environment's."""
    if _ACTIVE is not None:
        return _ACTIVE
    return _resolve_env_plan()


# -- module-level hooks (no-ops without an active plan) ---------------
def on_worker_candidate(index: int, attempt: int) -> None:
    plan = active_fault_plan()
    if plan is not None:
        plan.on_worker_candidate(index, attempt)


def should_corrupt_row(index: int) -> bool:
    plan = active_fault_plan()
    return plan is not None and plan.should_corrupt_row(index)


def maybe_raise_sweep(ordinal: int) -> None:
    plan = active_fault_plan()
    if plan is not None:
        plan.maybe_raise_sweep(ordinal)


def tick_delay_s(ordinal: int) -> float:
    plan = active_fault_plan()
    return 0.0 if plan is None else plan.tick_delay_s(ordinal)
